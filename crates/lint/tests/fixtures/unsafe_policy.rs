//! Fixture: a crate root missing `#![forbid(unsafe_code)]`, one documented
//! and one undocumented `unsafe` block.  Checked as
//! `crates/stream/src/lib.rs` (a non-compat library root).

pub fn undocumented(bytes: &[u8]) -> u32 {
    unsafe { std::ptr::read_unaligned(bytes.as_ptr().cast::<u32>()) } // violation
}

pub fn documented(bytes: &[u8]) -> u32 {
    // SAFETY: the caller guarantees `bytes` holds at least four bytes, and
    // read_unaligned has no alignment requirement.
    unsafe { std::ptr::read_unaligned(bytes.as_ptr().cast::<u32>()) }
}
