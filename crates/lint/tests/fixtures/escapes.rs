//! Fixture: malformed `lint:allow` escapes.  Checked as
//! `crates/core/src/fixture.rs`.

// lint:allow(panic-policy)
pub fn missing_reason() -> u32 {
    Some(1).unwrap() // still a violation: the escape above has no reason
}

// lint:allow(no-such-rule): the rule name is unknown
pub fn unknown_rule() {}

pub fn fine() -> u32 {
    // lint:allow(panic-policy): fixture demonstrating a standalone escape
    Some(2).unwrap()
}
