//! Fixture: hash-iteration violations and sanctioned reductions.
//! Checked as `crates/graph/src/fixture.rs`.

use crate::FxHashMap;
use std::collections::HashSet;

pub fn sanctioned_sum(tallies: &FxHashMap<u32, u64>) -> u64 {
    tallies.values().sum::<u64>() // fine: integer sum is order-insensitive
}

pub fn sanctioned_sort(tallies: &FxHashMap<u32, u64>) -> Vec<(u32, u64)> {
    let mut pairs: Vec<(u32, u64)> = tallies.iter().map(|(&k, &v)| (k, v)).collect();
    pairs.sort_unstable(); // the collect above is sanctioned by this sort
    pairs
}

pub fn sanctioned_len(tallies: &FxHashMap<u32, u64>) -> usize {
    tallies.keys().count() // fine: counting ignores order
}

pub fn unordered_fold(weights: &FxHashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for w in weights.values() {
        // violation: f64 accumulation in hash order
        total += w;
    }
    total
}

pub fn order_exposed(seen: HashSet<u32>) -> Vec<u32> {
    let exposed: Vec<u32> = seen.into_iter().collect(); // violation: hash order escapes
    exposed
}
