//! Hot-path allocation fixture: allocating constructors in the PARABACUS
//! per-batch module must be recycled away or carry a justification escape.

pub fn seal_batch() -> usize {
    let mut chunks = Vec::new();
    chunks.push(vec![0u32; 4]);
    // lint:allow(hot-path-alloc): recycled through the spare pool in real code
    let spare: Vec<u32> = Vec::with_capacity(8);
    chunks.len() + spare.capacity()
}

pub fn innocent() -> &'static str {
    // Prose about Vec::new() in a comment must not fire.
    "Vec::new()"
}

#[cfg(test)]
mod tests {
    #[test]
    fn scratch_allocations_are_fine() {
        let _: Vec<u32> = Vec::with_capacity(4);
    }
}
