//! Fixture: panic-policy violations, test-code exemptions, and string/raw
//! string decoys.  Checked as `crates/graph/src/fixture.rs`.

pub fn library_code(values: &[u32]) -> u32 {
    let first = values.first().unwrap(); // violation: unwrap
    let second = values.get(1).expect("two values"); // violation: expect
    if *first > *second {
        panic!("unsorted"); // violation: panic!
    }
    todo!() // violation: todo!
}

pub fn decoys() -> String {
    // None of these may fire: they live inside string literals.
    let a = "please don't .unwrap() in library code";
    let b = r#"raw strings can say panic!("boom") safely"#;
    let c = "escaped \" then .expect(nothing) stays a string";
    format!("{a}{b}{c}")
}

/// Doc comments may freely mention `.unwrap()` and `panic!` without firing.
pub fn documented() {}

pub fn justified() -> u32 {
    // lint:allow(panic-policy): fixture exercising a standalone escape
    Some(1).unwrap()
}

pub fn justified_trailing() -> u32 {
    Some(2).unwrap() // lint:allow(panic-policy): fixture exercising a trailing escape
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v = vec![1, 2, 3];
        assert_eq!(*v.first().unwrap(), 1);
        v.get(9).expect("index 9 is absent");
    }
}
