//! Fixture: persist-format magic literals outside the registry.
//! Checked as `crates/stream/src/fixture.rs`.

pub const ROGUE_MAGIC: &[u8] = b"ABWL1"; // violation: re-spelled magic
pub const ROGUE_STR: &str = "ABSNAP1"; // violation: re-spelled magic

pub fn prose_is_fine() -> String {
    // Mentioning a magic inside a longer message is not a redefinition.
    "the header is shorter than the ABWL1 magic".to_string()
}
