//! Fixture: determinism violations, plus the tricky non-violations the
//! masked lexer must not flag.  Checked as `crates/core/src/fixture.rs`.

use std::time::{Instant, SystemTime};

pub fn clocked_estimate() -> f64 {
    let t = SystemTime::now(); // violation: wall clock
    let started = Instant::now(); // violation: monotonic clock
    let _ = (t, started);
    0.0
}

pub fn seeded_from_ambient() -> u64 {
    let rng = rand::rng().thread_rng(); // violation: ambient RNG
    let _ = std::env::var("ABACUS_SEED"); // violation: env-dependent seed
    rng
}

pub fn innocent() -> &'static str {
    // A string literal mentioning SystemTime::now must NOT be flagged.
    let msg = "calling SystemTime::now here would break replay";
    // Neither must a comment: Instant::now is fine to *discuss*.
    msg
}

pub fn timed_diagnostics() -> std::time::Instant {
    // lint:allow(determinism): fixture exercising a justified escape
    Instant::now()
}
