//! End-to-end tests of the analyzer over the seeded fixture corpus, plus the
//! self-scan asserting the real workspace is clean.

use abacus_lint::{check_file, find_workspace_root, run_check, Diagnostic, Rule, Scope};
use std::path::Path;

/// Runs `check_file` on a fixture as if it lived at `as_path`.
fn check_fixture(source: &str, as_path: &str) -> Vec<Diagnostic> {
    let scope = Scope::for_path(as_path).expect("fixture path must be in scope");
    check_file(as_path, source, scope)
}

/// The `(rule, line)` pairs of a diagnostic list, in reported order.
fn keys(diags: &[Diagnostic]) -> Vec<(Rule, usize)> {
    diags.iter().map(|d| (d.rule, d.line)).collect()
}

#[test]
fn determinism_fixture_flags_clocks_and_ambient_randomness() {
    let diags = check_fixture(
        include_str!("fixtures/determinism.rs"),
        "crates/core/src/fixture.rs",
    );
    assert_eq!(
        keys(&diags),
        vec![
            (Rule::Determinism, 7),  // SystemTime::now
            (Rule::Determinism, 8),  // Instant::now
            (Rule::Determinism, 14), // thread_rng
            (Rule::Determinism, 15), // env::var
        ],
        "got: {diags:#?}"
    );
    // The escaped Instant::now (line 28) and the string/comment decoys in
    // `innocent` must not appear.
    assert!(diags.iter().all(|d| d.line < 20), "got: {diags:#?}");
}

#[test]
fn panic_policy_fixture_flags_library_code_only() {
    let diags = check_fixture(
        include_str!("fixtures/panic_policy.rs"),
        "crates/graph/src/fixture.rs",
    );
    assert_eq!(
        keys(&diags),
        vec![
            (Rule::PanicPolicy, 5),  // unwrap
            (Rule::PanicPolicy, 6),  // expect
            (Rule::PanicPolicy, 8),  // panic!
            (Rule::PanicPolicy, 10), // todo!
        ],
        "string decoys, doc comments, #[cfg(test)] code, and escaped lines \
         must not fire; got: {diags:#?}"
    );
}

#[test]
fn hash_iter_fixture_flags_order_exposure_not_sanctioned_reductions() {
    let diags = check_fixture(
        include_str!("fixtures/hash_iter.rs"),
        "crates/graph/src/fixture.rs",
    );
    assert_eq!(
        keys(&diags),
        vec![
            (Rule::HashIter, 23), // for w in weights.values()
            (Rule::HashIter, 31), // seen.into_iter().collect() into return
        ],
        "integer sums, counts, and collect-then-sort must pass; got: {diags:#?}"
    );
}

#[test]
fn unsafe_fixture_requires_forbid_and_safety_comments() {
    let diags = check_fixture(
        include_str!("fixtures/unsafe_policy.rs"),
        "crates/stream/src/lib.rs",
    );
    assert_eq!(
        keys(&diags),
        vec![
            (Rule::UnsafePolicy, 1), // missing #![forbid(unsafe_code)]
            (Rule::UnsafePolicy, 6), // undocumented unsafe block
        ],
        "the SAFETY-documented block must pass; got: {diags:#?}"
    );
}

#[test]
fn persist_format_fixture_flags_exact_literals_only() {
    let diags = check_fixture(
        include_str!("fixtures/persist_format.rs"),
        "crates/stream/src/fixture.rs",
    );
    assert_eq!(
        keys(&diags),
        vec![
            (Rule::PersistFormat, 4), // b"ABWL1"
            (Rule::PersistFormat, 5), // "ABSNAP1"
        ],
        "prose mentioning a magic inside a longer string must pass; got: {diags:#?}"
    );
}

#[test]
fn hot_path_alloc_fixture_flags_unjustified_ctors_in_parabacus_only() {
    let diags = check_fixture(
        include_str!("fixtures/hot_path_alloc.rs"),
        "crates/core/src/parabacus/fixture.rs",
    );
    assert_eq!(
        keys(&diags),
        vec![
            (Rule::HotPathAlloc, 5), // Vec::new
            (Rule::HotPathAlloc, 6), // vec!
        ],
        "the escaped Vec::with_capacity, comment/string decoys, and \
         #[cfg(test)] code must not fire; got: {diags:#?}"
    );
    // The same source outside the per-batch module is out of scope for the
    // allocation rule (core's other rules still apply to it).
    let elsewhere = check_fixture(
        include_str!("fixtures/hot_path_alloc.rs"),
        "crates/core/src/fixture.rs",
    );
    assert!(
        elsewhere.iter().all(|d| d.rule != Rule::HotPathAlloc),
        "got: {elsewhere:#?}"
    );
}

#[test]
fn malformed_escapes_are_diagnostics_not_silent_allows() {
    let diags = check_fixture(
        include_str!("fixtures/escapes.rs"),
        "crates/core/src/fixture.rs",
    );
    assert_eq!(
        keys(&diags),
        vec![
            (Rule::LintEscape, 4),  // missing reason
            (Rule::PanicPolicy, 6), // ...so the unwrap below still fires
            (Rule::LintEscape, 9),  // unknown rule name
        ],
        "got: {diags:#?}"
    );
}

#[test]
fn scope_exempts_compat_cli_tests_and_fixtures() {
    // Vendored compat drop-ins: no panic policy, no forbid requirement.
    let compat = Scope::for_path("crates/compat/rand/src/lib.rs").unwrap();
    assert!(!compat.panic_policy && !compat.require_forbid_unsafe);
    // CLI library code may unwrap (it is not estimate-affecting library code).
    let cli = Scope::for_path("crates/cli/src/commands/run.rs").unwrap();
    assert!(!cli.panic_policy && !cli.determinism);
    // Integration tests are whole-file exempt from the textual rules.
    let test = Scope::for_path("tests/streaming_parity.rs").unwrap();
    assert!(!test.panic_policy && !test.determinism && !test.hash_iter);
    // The fixture corpus is skipped entirely.
    assert!(Scope::for_path("crates/lint/tests/fixtures/escapes.rs").is_none());
    // Library roots of non-compat crates must forbid unsafe.
    let root = Scope::for_path("crates/graph/src/lib.rs").unwrap();
    assert!(root.require_forbid_unsafe);
}

#[test]
fn self_scan_real_workspace_is_clean() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("the lint crate lives inside the workspace");
    let diags = run_check(&root).expect("workspace sources must be readable");
    assert!(
        diags.is_empty(),
        "the real workspace must stay lint-clean:\n{}",
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
