//! The rule families enforced by `abacus-lint`, and the per-file driver.
//!
//! Every rule operates on a [`crate::lexer::FileScan`] — never on
//! raw source — so string literals, doc comments, and raw strings can never
//! produce false call-site matches.  Which rules apply to a file is decided
//! by [`Scope`], computed from the file's workspace-relative path; per-line
//! escapes (`// lint:allow(<rule>): <reason>`) disable one rule for one line
//! and must carry a non-empty justification.

use crate::lexer::{scan, FileScan};
use std::collections::BTreeMap;
use std::fmt;

/// The magic strings whose spelling is restricted to the format registry
/// (`crates/graph/src/persist.rs`), together with that registry path.
pub const PERSIST_MAGICS: [&str; 5] = ["ABST1", "ABSNAP1", "ABWL1", "ABWM1", "ABMF1"];

/// Workspace-relative path of the one file allowed to spell magic literals.
pub const FORMAT_REGISTRY_PATH: &str = "crates/graph/src/persist.rs";

/// Path prefix of the PARABACUS per-batch hot path, where every allocating
/// constructor must either be recycled away or carry a justification escape
/// (the module's whole perf story is arena reuse — see
/// `crates/core/src/parabacus/`).
pub const HOT_PATH_PREFIX: &str = "crates/core/src/parabacus/";

/// Rule identifiers, as spelled inside `lint:allow(...)` escapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Wall-clock time, ambient randomness, or environment reads in
    /// estimate-affecting library code.
    Determinism,
    /// Iteration over unordered hash containers in estimate-affecting code.
    HashIter,
    /// `unwrap`/`expect`/`panic!`-family calls in non-test library code.
    PanicPolicy,
    /// Missing `#![forbid(unsafe_code)]` or undocumented `unsafe`.
    UnsafePolicy,
    /// A persist-format magic string spelled outside the format registry.
    PersistFormat,
    /// An allocating constructor in the PARABACUS per-batch hot path
    /// without a justification escape.
    HotPathAlloc,
    /// A malformed `lint:allow` escape (unknown rule, missing reason).
    LintEscape,
}

impl Rule {
    /// The spelling used in diagnostics and `lint:allow(...)`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::Determinism => "determinism",
            Rule::HashIter => "hash-iter",
            Rule::PanicPolicy => "panic-policy",
            Rule::UnsafePolicy => "unsafe-policy",
            Rule::PersistFormat => "persist-format",
            Rule::HotPathAlloc => "hot-path-alloc",
            Rule::LintEscape => "lint-escape",
        }
    }

    /// Parses a rule name as spelled in an allow escape.
    #[must_use]
    pub fn parse(name: &str) -> Option<Rule> {
        match name {
            "determinism" => Some(Rule::Determinism),
            "hash-iter" => Some(Rule::HashIter),
            "panic-policy" => Some(Rule::PanicPolicy),
            "unsafe-policy" => Some(Rule::UnsafePolicy),
            "persist-format" => Some(Rule::PersistFormat),
            "hot-path-alloc" => Some(Rule::HotPathAlloc),
            _ => None,
        }
    }

    /// A one-line remediation hint, used by `--fix-report`.
    #[must_use]
    pub fn hint(self) -> &'static str {
        match self {
            Rule::Determinism => {
                "route time/randomness through injected state (seeded RNG, caller-supplied \
                 clock); estimate paths must be replayable bit-for-bit"
            }
            Rule::HashIter => {
                "iterate a sorted copy (BTreeMap/BTreeSet, .sort()ed Vec) or reduce with an \
                 order-insensitive fold (integer sum/max/len); f64 accumulation over hash \
                 order is run-to-run nondeterministic"
            }
            Rule::PanicPolicy => {
                "return a typed error (EngineError/PersistError/StreamIoError) instead; \
                 if the call is a real invariant, justify it with \
                 `// lint:allow(panic-policy): <why the invariant holds>`"
            }
            Rule::UnsafePolicy => {
                "add `#![forbid(unsafe_code)]` to the crate root, or a `// SAFETY:` comment \
                 immediately above the unsafe block explaining why it is sound"
            }
            Rule::PersistFormat => {
                "reference abacus_graph::persist::format (e.g. format::ABST1.magic / .name) \
                 instead of re-spelling the literal"
            }
            Rule::HotPathAlloc => {
                "reuse a recycled buffer (spare pools, clear-don't-drop, ViewScratch) instead \
                 of allocating per batch; one-time constructor or cold-path allocations are \
                 justified with `// lint:allow(hot-path-alloc): <why it is not per-batch>`"
            }
            Rule::LintEscape => "use `// lint:allow(<rule>): <non-empty reason>`",
        }
    }
}

/// One finding, pointing at a workspace-relative path and 1-based line.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path,
            self.line,
            self.rule.name(),
            self.message
        )
    }
}

/// Which rule families apply to a file, derived from its path.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// Determinism rule (library code of estimate-relevant crates).
    pub determinism: bool,
    /// Hash-iteration rule (estimate-affecting modules).
    pub hash_iter: bool,
    /// Panic-policy rule (non-test library code).
    pub panic_policy: bool,
    /// `unsafe` blocks require `// SAFETY:` comments.
    pub unsafe_needs_safety: bool,
    /// The file is a non-compat crate root and must forbid unsafe code.
    pub require_forbid_unsafe: bool,
    /// Persist-format magic spelling rule.
    pub persist_format: bool,
    /// Allocation-constructor rule for the PARABACUS per-batch hot path.
    pub hot_path_alloc: bool,
    /// The file IS the format registry (magics must be defined here, once).
    pub is_format_registry: bool,
    /// Whether `lint:allow` escapes are parsed (and malformed ones flagged).
    /// Off inside the analyzer's own crate, whose docs and tests must be able
    /// to *mention* the escape grammar without arming live escapes.
    pub parse_escapes: bool,
}

/// Crates whose `src/` is "library code" for the panic policy.
const PANIC_POLICY_CRATES: [&str; 6] = [
    "core",
    "sampling",
    "graph",
    "stream",
    "baselines",
    "metrics",
];
/// Crates whose `src/` must be deterministic (no wall clock / ambient RNG).
const DETERMINISM_CRATES: [&str; 5] = ["core", "sampling", "graph", "stream", "baselines"];
/// Crates whose `src/` is estimate-affecting for the hash-iteration rule.
const HASH_ITER_CRATES: [&str; 4] = ["core", "sampling", "graph", "baselines"];
/// Non-compat workspace crates (must carry `#![forbid(unsafe_code)]` at the
/// library root).  `bench` ships an unsafe `GlobalAlloc` in a *binary* root,
/// which is why the forbid requirement targets library roots specifically.
const NON_COMPAT_CRATES: [&str; 9] = [
    "core",
    "sampling",
    "graph",
    "stream",
    "baselines",
    "metrics",
    "cli",
    "bench",
    "lint",
];

impl Scope {
    /// Scope for a workspace-relative path (forward slashes).  Returns
    /// `None` for files the analyzer skips entirely (lint fixtures, build
    /// output).
    #[must_use]
    pub fn for_path(path: &str) -> Option<Scope> {
        if path.starts_with("target/")
            || path.contains("/target/")
            || path.starts_with("crates/lint/tests/fixtures/")
        {
            return None;
        }
        let crate_name = path
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next());
        let in_crate_src = |name: &str| {
            crate_name == Some(name) && path.starts_with(&format!("crates/{name}/src/"))
        };
        let is_compat = crate_name == Some("compat");
        // The analyzer's own sources talk *about* magic strings and the
        // escape grammar (rule tables, fixtures-in-docs, its own tests), so
        // the textual rules don't apply to it — structural ones still do.
        let is_lint = crate_name == Some("lint");
        let is_lib_root = path == "src/lib.rs"
            || NON_COMPAT_CRATES
                .iter()
                .any(|c| path == format!("crates/{c}/src/lib.rs"));
        Some(Scope {
            determinism: DETERMINISM_CRATES.iter().any(|c| in_crate_src(c)),
            hash_iter: HASH_ITER_CRATES.iter().any(|c| in_crate_src(c)),
            panic_policy: PANIC_POLICY_CRATES.iter().any(|c| in_crate_src(c)),
            unsafe_needs_safety: true,
            require_forbid_unsafe: is_lib_root && !is_compat,
            persist_format: !is_lint,
            hot_path_alloc: path.starts_with(HOT_PATH_PREFIX),
            is_format_registry: path == FORMAT_REGISTRY_PATH,
            parse_escapes: !is_lint,
        })
    }
}

/// A `lint:allow` escape parsed from a comment.
#[derive(Debug)]
struct Allow {
    rule: Rule,
    /// The line(s) the escape covers.
    lines: [usize; 2],
}

/// Parses every `lint:allow(<rule>): <reason>` escape in the file.  A
/// trailing escape covers its own line; a standalone comment covers the
/// following line.  Malformed escapes produce [`Rule::LintEscape`]
/// diagnostics instead of silently allowing anything.  A bare `lint:allow`
/// without the opening paren is treated as prose (comments may legitimately
/// *talk about* the escape syntax) and ignored.
fn parse_allows(scan: &FileScan, path: &str, diags: &mut Vec<Diagnostic>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for comment in &scan.comments {
        let mut rest = comment.text.as_str();
        while let Some(at) = rest.find("lint:allow(") {
            let open = &rest[at + "lint:allow(".len()..];
            rest = open;
            let Some(close) = open.find(')') else {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: comment.line,
                    rule: Rule::LintEscape,
                    message: "malformed escape: unclosed rule name".into(),
                });
                break;
            };
            let name = open[..close].trim();
            let after = &open[close + 1..];
            rest = after;
            let Some(rule) = Rule::parse(name) else {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: comment.line,
                    rule: Rule::LintEscape,
                    message: format!("unknown rule `{name}` in lint:allow"),
                });
                continue;
            };
            let reason = after
                .strip_prefix(':')
                .map(str::trim)
                .unwrap_or_default()
                .trim_end_matches(|c: char| c == '.' || c.is_whitespace());
            if reason.is_empty() {
                diags.push(Diagnostic {
                    path: path.to_string(),
                    line: comment.line,
                    rule: Rule::LintEscape,
                    message: format!(
                        "lint:allow({name}) needs a reason: `lint:allow({name}): <why>`"
                    ),
                });
                continue;
            }
            let covered = if comment.standalone {
                [comment.line + 1, comment.line]
            } else {
                [comment.line, comment.line]
            };
            allows.push(Allow {
                rule,
                lines: covered,
            });
        }
    }
    allows
}

/// Byte ranges of `#[cfg(test)]` / `#[test]` items, used to exempt test code
/// from the panic/determinism rules.
fn test_ranges(masked: &str) -> Vec<(usize, usize)> {
    let bytes = masked.as_bytes();
    let mut ranges = Vec::new();
    for marker in ["#[cfg(test)]", "#[test]"] {
        let mut from = 0usize;
        while let Some(at) = masked[from..].find(marker) {
            let attr_end = from + at + marker.len();
            // Scan forward: the guarded item ends at the matching `}` of its
            // first `{`, or at a top-level `;` for brace-less items.
            let mut depth = 0usize;
            let mut end = attr_end;
            let mut j = attr_end;
            let mut opened = false;
            while j < bytes.len() {
                match bytes[j] {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => {
                        depth = depth.saturating_sub(1);
                        if opened && depth == 0 {
                            end = j + 1;
                            break;
                        }
                    }
                    b';' if !opened && depth == 0 => {
                        end = j + 1;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            if j >= bytes.len() {
                end = bytes.len();
            }
            ranges.push((from + at, end));
            from = attr_end;
        }
    }
    ranges
}

/// Maps byte offsets to 1-based line numbers.
struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    fn new(text: &str) -> Self {
        let mut starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    fn line_of(&self, offset: usize) -> usize {
        self.starts.partition_point(|&s| s <= offset)
    }

    /// Byte range of a 1-based line.
    fn range_of(&self, line: usize) -> (usize, usize) {
        let start = self.starts[line - 1];
        let end = self.starts.get(line).copied().unwrap_or(usize::MAX);
        (start, end)
    }
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Finds word-boundary occurrences of `needle` in `haystack`, yielding byte
/// offsets.  "Word boundary" means the surrounding bytes are not
/// identifier characters (so `thread_rng` does not match `my_thread_rng`).
fn find_token(haystack: &str, needle: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let bytes = haystack.as_bytes();
    let mut from = 0;
    while let Some(at) = haystack[from..].find(needle) {
        let start = from + at;
        let end = start + needle.len();
        let left_ok = start == 0 || !is_ident_char(bytes[start - 1]);
        let first = needle.as_bytes()[0];
        let last = needle.as_bytes()[needle.len() - 1];
        let right_ok = end >= bytes.len() || !is_ident_char(bytes[end]) || !is_ident_char(last);
        let left_ok = left_ok || !is_ident_char(first);
        if left_ok && right_ok {
            out.push(start);
        }
        from = start + 1;
    }
    out
}

/// The full per-file analysis: lexes `source` and applies every rule `scope`
/// enables, honouring `lint:allow` escapes.
#[must_use]
pub fn check_file(path: &str, source: &str, scope: Scope) -> Vec<Diagnostic> {
    let scan = scan(source);
    let mut diags = Vec::new();
    let allows = if scope.parse_escapes {
        parse_allows(&scan, path, &mut diags)
    } else {
        Vec::new()
    };
    let index = LineIndex::new(&scan.masked);
    let tests = test_ranges(&scan.masked);
    let in_test = |offset: usize| tests.iter().any(|&(s, e)| offset >= s && offset < e);
    let line_in_test = |line: usize| {
        let (s, _) = index.range_of(line);
        in_test(s)
    };
    let allowed = |rule: Rule, line: usize| {
        allows
            .iter()
            .any(|a| a.rule == rule && a.lines.contains(&line))
    };
    let mut push = |rule: Rule, line: usize, message: String, diags: &mut Vec<Diagnostic>| {
        if !allowed(rule, line) {
            diags.push(Diagnostic {
                path: path.to_string(),
                line,
                rule,
                message,
            });
        }
    };

    if scope.determinism {
        for pattern in [
            "SystemTime::now",
            "Instant::now",
            "thread_rng",
            "from_entropy",
            "rand::random",
            "env::var",
            "env::vars",
            "random_state",
            "RandomState",
        ] {
            for at in find_token(&scan.masked, pattern) {
                if in_test(at) {
                    continue;
                }
                let line = index.line_of(at);
                push(
                    Rule::Determinism,
                    line,
                    format!("`{pattern}` is nondeterministic in estimate-affecting library code"),
                    &mut diags,
                );
            }
        }
    }

    if scope.panic_policy {
        let patterns: [(&str, &str); 7] = [
            (".unwrap()", "unwrap"),
            (".expect(", "expect"),
            (".unwrap_unchecked(", "unwrap_unchecked"),
            ("panic!", "panic!"),
            ("todo!", "todo!"),
            ("unimplemented!", "unimplemented!"),
            ("unreachable!", "unreachable!"),
        ];
        for (pattern, label) in patterns {
            for at in find_token(&scan.masked, pattern) {
                if in_test(at) {
                    continue;
                }
                // `.expect(` must not match `.expect_end(` — find_token's
                // boundary check already handles this because `(` terminates
                // the needle, but guard the principle explicitly for the
                // plain-word macros (`panic!` cannot be an ident tail).
                let line = index.line_of(at);
                push(
                    Rule::PanicPolicy,
                    line,
                    format!("`{label}` in library code: return a typed error instead"),
                    &mut diags,
                );
            }
        }
    }

    if scope.hash_iter {
        check_hash_iter(&scan, &index, &in_test, &mut push, &mut diags);
    }

    if scope.hot_path_alloc {
        // Allocating constructors.  The list is deliberately blunt: inside
        // the hot-path module *every* allocation site must either disappear
        // into a recycled buffer or explain why it is not per-batch — the
        // escape reasons double as the module's allocation inventory.
        // (`Arc::new` is exempt: the shared-ownership handoff is the batch
        // protocol itself, and the payloads it wraps are what get recycled.)
        const ALLOC_CTORS: [&str; 12] = [
            "Vec::new",
            "Vec::with_capacity",
            "vec!",
            "Box::new",
            "FxHashMap::default",
            "FxHashMap::with_capacity",
            "FxHashSet::default",
            "FxHashSet::with_capacity",
            "HashMap::new",
            "HashSet::new",
            "String::new",
            ".to_vec(",
        ];
        for pattern in ALLOC_CTORS {
            for at in find_token(&scan.masked, pattern) {
                if in_test(at) {
                    continue;
                }
                let line = index.line_of(at);
                push(
                    Rule::HotPathAlloc,
                    line,
                    format!(
                        "`{}` allocates in the per-batch hot path; recycle a buffer or \
                         justify the allocation",
                        pattern.trim_matches(|c| c == '.' || c == '(')
                    ),
                    &mut diags,
                );
            }
        }
    }

    if scope.unsafe_needs_safety {
        for at in find_token(&scan.masked, "unsafe") {
            let line = index.line_of(at);
            // A SAFETY comment on the same line or within the 3 preceding
            // lines justifies the block.
            let documented = scan
                .comments
                .iter()
                .any(|c| c.text.contains("SAFETY:") && c.line + 3 >= line && c.line <= line);
            if !documented {
                push(
                    Rule::UnsafePolicy,
                    line,
                    "`unsafe` without a `// SAFETY:` comment justifying soundness".into(),
                    &mut diags,
                );
            }
        }
    }

    if scope.require_forbid_unsafe && !scan.masked.contains("#![forbid(unsafe_code)]") {
        push(
            Rule::UnsafePolicy,
            1,
            "crate root is missing `#![forbid(unsafe_code)]`".into(),
            &mut diags,
        );
    }

    if scope.persist_format {
        for lit in &scan.strings {
            if let Some(&magic) = PERSIST_MAGICS.iter().find(|&&m| m == lit.value) {
                if scope.is_format_registry {
                    continue; // uniqueness is checked by the workspace pass
                }
                push(
                    Rule::PersistFormat,
                    lit.line,
                    format!(
                        "magic `{magic}` re-spelled as a literal; reference the \
                         persist::format registry instead"
                    ),
                    &mut diags,
                );
            }
        }
    }

    // Deterministic output order: by line, then rule.
    diags.sort_by_key(|a| (a.line, a.rule));
    let _ = line_in_test; // kept for future rules that are line-oriented
    diags
}

/// The escape-aware diagnostic sink rules report through.
type PushFn<'a> = dyn FnMut(Rule, usize, String, &mut Vec<Diagnostic>) + 'a;

/// The hash-iteration rule: collects identifiers declared with hash-map/set
/// types in this file, then flags iteration over them unless the statement
/// visibly re-orders or reduces order-insensitively.
fn check_hash_iter(
    scan: &FileScan,
    index: &LineIndex,
    in_test: &dyn Fn(usize) -> bool,
    push: &mut PushFn<'_>,
    diags: &mut Vec<Diagnostic>,
) {
    let masked = &scan.masked;
    let mut hash_names: Vec<String> = Vec::new();
    // Declarations: `name: [&][path::]FxHashMap<` / `HashSet<` …
    for ty in ["FxHashMap", "FxHashSet", "HashMap", "HashSet"] {
        for at in find_token(masked, ty) {
            let after = &masked[at + ty.len()..];
            if !after.trim_start().starts_with('<') && !after.trim_start().starts_with("::") {
                continue;
            }
            if let Some(name) = declared_name_before(masked, at) {
                if !hash_names.contains(&name) {
                    hash_names.push(name);
                }
            }
        }
    }
    // Constructor bindings: `let [mut] name = fx_hashmap_with_capacity(...)`.
    for ctor in ["fx_hashmap_with_capacity", "fx_hashset_with_capacity"] {
        for at in find_token(masked, ctor) {
            if let Some(name) = bound_name_before(masked, at) {
                if !hash_names.contains(&name) {
                    hash_names.push(name);
                }
            }
        }
    }

    const ITER_METHODS: [&str; 10] = [
        ".iter()",
        ".iter_mut()",
        ".keys()",
        ".values()",
        ".values_mut()",
        ".drain(",
        ".into_iter()",
        ".into_keys()",
        ".into_values()",
        ".retain(",
    ];
    for name in &hash_names {
        for method in ITER_METHODS {
            let needle = format!("{name}{method}");
            for at in find_token(masked, &needle) {
                if in_test(at) {
                    continue;
                }
                let line = index.line_of(at);
                if statement_is_order_insensitive(masked, index, at) {
                    continue;
                }
                push(
                    Rule::HashIter,
                    line,
                    format!(
                        "iteration over hash container `{name}` ({}) has nondeterministic \
                         order",
                        method.trim_matches(|c| c == '.' || c == '(' || c == ')')
                    ),
                    diags,
                );
            }
        }
        // `for x in &name` / `for x in name` loops are always order-exposed.
        for prefix in ["in &mut ", "in &", "in "] {
            let needle = format!("{prefix}{name}");
            for at in find_token(masked, &needle) {
                if in_test(at) {
                    continue;
                }
                // Only flag whole-identifier receivers (`in name {`, not
                // `in name_longer` — find_token guarantees that — and not
                // method chains like `in name.keys()` which the method pass
                // already saw).
                let end = at + needle.len();
                let next = masked.as_bytes().get(end).copied().unwrap_or(b' ');
                if next == b'.' {
                    continue;
                }
                let line = index.line_of(at);
                push(
                    Rule::HashIter,
                    line,
                    format!("`for … in {name}` iterates a hash container in hash order"),
                    diags,
                );
            }
        }
    }
}

/// Walks left from a type-token offset to find `ident :` — the declared
/// binding or field name — skipping path qualifiers and reference sigils.
fn declared_name_before(masked: &str, type_at: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let mut i = type_at;
    // Skip backwards over the path prefix: idents, `::`, `&`, whitespace,
    // `mut`, `<` (one level: `Option<FxHashMap<...>>`-style wrappers are
    // conservatively accepted).
    loop {
        while i > 0 && (bytes[i - 1] == b' ' || bytes[i - 1] == b'&' || bytes[i - 1] == b'<') {
            i -= 1;
        }
        if i >= 2 && &masked[i - 2..i] == "::" {
            i -= 2;
            while i > 0 && is_ident_char(bytes[i - 1]) {
                i -= 1;
            }
            continue;
        }
        break;
    }
    if i == 0 || bytes[i - 1] != b':' {
        return None;
    }
    i -= 1; // the `:`
    while i > 0 && bytes[i - 1] == b' ' {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_char(bytes[i - 1]) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    let name = &masked[i..end];
    if name == "mut" || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    Some(name.to_string())
}

/// Walks left from a constructor-call offset across `=` to find the bound
/// name in `let [mut] name = ctor(...)`.
fn bound_name_before(masked: &str, ctor_at: usize) -> Option<String> {
    let bytes = masked.as_bytes();
    let mut i = ctor_at;
    while i > 0 && bytes[i - 1] == b' ' {
        i -= 1;
    }
    if i == 0 || bytes[i - 1] != b'=' {
        return None;
    }
    i -= 1;
    while i > 0 && bytes[i - 1] == b' ' {
        i -= 1;
    }
    let end = i;
    while i > 0 && is_ident_char(bytes[i - 1]) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    Some(masked[i..end].to_string())
}

/// Whether the statement containing `at` visibly re-orders the iteration or
/// reduces it order-insensitively.  The window runs from the match to the
/// first `;` (capped at 8 lines); a `.collect`-ing statement also gets the
/// *following* statement, so the common collect-then-sort idiom is sanctioned
/// by the sort it feeds.
fn statement_is_order_insensitive(masked: &str, index: &LineIndex, at: usize) -> bool {
    const SANCTIONED: [&str; 16] = [
        "BTreeSet",
        "BTreeMap",
        "BinaryHeap",
        ".sort",
        "sorted",
        ".max()",
        ".min()",
        ".max_by_key(",
        ".min_by_key(",
        ".count()",
        ".len()",
        ".sum::<u64>()",
        ".sum::<u128>()",
        ".sum::<usize>()",
        ".all(",
        ".any(",
    ];
    let line = index.line_of(at);
    let (start, _) = index.range_of(line);
    let cap_line = line + 8;
    let end = if cap_line <= index.starts.len() {
        index.range_of(cap_line).0
    } else {
        masked.len()
    };
    let window = &masked[start..end.min(masked.len())];
    let first_semi = window.find(';').map_or(window.len(), |p| p + 1);
    let stmt_end = if window[..first_semi].contains(".collect") {
        // Collect-then-sort: the re-ordering lives one statement later.
        first_semi
            + window[first_semi..]
                .find(';')
                .map_or(window.len() - first_semi, |p| p + 1)
    } else {
        first_semi
    };
    let stmt = &window[..stmt_end];
    SANCTIONED.iter().any(|s| stmt.contains(s))
}

/// Groups diagnostics per rule for the `--fix-report` output.
#[must_use]
pub fn fix_report(diags: &[Diagnostic]) -> String {
    let mut by_rule: BTreeMap<&'static str, Vec<&Diagnostic>> = BTreeMap::new();
    let mut hints: BTreeMap<&'static str, &'static str> = BTreeMap::new();
    for d in diags {
        by_rule.entry(d.rule.name()).or_default().push(d);
        hints.insert(d.rule.name(), d.rule.hint());
    }
    let mut out = String::new();
    for (rule, group) in &by_rule {
        out.push_str(&format!("## {rule} ({} violations)\n", group.len()));
        out.push_str(&format!("   fix: {}\n", hints[rule]));
        for d in group {
            out.push_str(&format!("   {}:{}: {}\n", d.path, d.line, d.message));
        }
        out.push('\n');
    }
    out
}
