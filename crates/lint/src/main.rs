//! The `abacus-lint` command-line entry point.
//!
//! ```text
//! abacus-lint check [--fix-report] [--root <dir>]
//! ```
//!
//! `check` scans every workspace source and prints one `path:line: [rule]
//! message` diagnostic per violation, exiting nonzero if any were found.
//! `--fix-report` appends a per-rule summary with remediation hints.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut fix_report = false;
    let mut root_override: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "check" if command.is_none() => command = Some("check"),
            "--fix-report" => fix_report = true,
            "--root" => match iter.next() {
                Some(dir) => root_override = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("error: unknown argument `{other}`");
                eprintln!("usage: abacus-lint check [--fix-report] [--root <dir>]");
                return ExitCode::from(2);
            }
        }
    }
    if command != Some("check") {
        eprintln!("usage: abacus-lint check [--fix-report] [--root <dir>]");
        return ExitCode::from(2);
    }

    let root = root_override.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        abacus_lint::find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("error: could not locate the workspace root (no Cargo.toml with [workspace])");
        return ExitCode::from(2);
    };

    match abacus_lint::run_check(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("abacus-lint: workspace clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            if fix_report {
                println!();
                print!("{}", abacus_lint::fix_report(&diags));
            }
            eprintln!("abacus-lint: {} violation(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
