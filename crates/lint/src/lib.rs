//! `abacus-lint` — the workspace invariant analyzer.
//!
//! The parity, recovery, and fault-tolerance suites all rest on source-level
//! conventions no compiler pass checks: estimate-affecting code must be
//! replayable bit-for-bit (no wall clock, no ambient randomness, no hash-order
//! iteration), the durability layer must fail closed (typed errors, never
//! panics), `unsafe` is forbidden outside the vendored compat crates, and
//! each on-disk magic/version is defined exactly once.  This crate mechanizes
//! those conventions as a standalone static analysis over the workspace
//! sources — no `syn`, no rustc plugin, just the comment/string-aware lexer
//! in [`lexer`] — so CI can gate on them.
//!
//! Run it as `cargo run -p abacus-lint -- check [--fix-report]`.
//!
//! # Rules
//!
//! | rule | scope | what it catches |
//! |------|-------|-----------------|
//! | `determinism` | `crates/{core,sampling,graph,stream,baselines}/src` | `SystemTime::now`, `Instant::now`, `thread_rng`, `from_entropy`, env reads, std-seeded hash containers |
//! | `hash-iter` | `crates/{core,sampling,graph,baselines}/src` | iteration over `HashMap`/`HashSet` without visible re-ordering or an order-insensitive reduction |
//! | `panic-policy` | `crates/{core,sampling,graph,stream,baselines,metrics}/src` | `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/`unreachable!` outside `#[cfg(test)]` |
//! | `unsafe-policy` | whole workspace | missing `#![forbid(unsafe_code)]` on non-compat crate roots; `unsafe` without a `// SAFETY:` comment |
//! | `persist-format` | whole workspace | `ABST1`/`ABSNAP1`/`ABWL1`/`ABWM1`/`ABMF1` spelled as a literal outside the format registry |
//!
//! A violating line can opt out with `// lint:allow(<rule>): <reason>` on the
//! same line or the line above; the reason is mandatory, and malformed or
//! unknown escapes are themselves diagnostics (`lint-escape`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{check_file, fix_report, Diagnostic, Rule, Scope};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Recursively collects the workspace's `.rs` files (workspace-relative,
/// forward-slash paths), skipping build output and the lint fixture corpus.
///
/// # Errors
/// Propagates filesystem errors from directory traversal.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if name == "target" || name == ".git" || name == "fixtures" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs every rule over every workspace source under `root`, including the
/// workspace-level persist-format uniqueness check.
///
/// # Errors
/// Propagates filesystem errors (unreadable files or directories).
pub fn run_check(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut diags = Vec::new();
    let mut registry_counts: Vec<(String, usize)> = rules::PERSIST_MAGICS
        .iter()
        .map(|&m| (m.to_string(), 0))
        .collect();
    let mut registry_seen = false;

    for path in workspace_sources(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(scope) = Scope::for_path(&rel) else {
            continue;
        };
        let source = fs::read_to_string(&path)?;
        if scope.is_format_registry {
            registry_seen = true;
            let scan = lexer::scan(&source);
            for lit in &scan.strings {
                if let Some(slot) = registry_counts.iter_mut().find(|(m, _)| *m == lit.value) {
                    slot.1 += 1;
                }
            }
        }
        diags.extend(check_file(&rel, &source, scope));
    }

    // Workspace pass: each magic must be defined in the registry, exactly once.
    if registry_seen {
        for (magic, count) in &registry_counts {
            if *count != 1 {
                diags.push(Diagnostic {
                    path: rules::FORMAT_REGISTRY_PATH.to_string(),
                    line: 1,
                    rule: Rule::PersistFormat,
                    message: format!(
                        "magic `{magic}` must be defined exactly once in the format \
                         registry (found {count} literal occurrences)"
                    ),
                });
            }
        }
    } else {
        diags.push(Diagnostic {
            path: rules::FORMAT_REGISTRY_PATH.to_string(),
            line: 1,
            rule: Rule::PersistFormat,
            message: "format registry file is missing".to_string(),
        });
    }

    diags.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(diags)
}

/// Walks up from `start` to find the workspace root (the directory whose
/// `Cargo.toml` declares `[workspace]`).
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
