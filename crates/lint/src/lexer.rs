//! A minimal, self-contained Rust surface lexer.
//!
//! The analyzer must never mistake `panic!` inside a string literal, a doc
//! comment, or a raw string for a real call site, and it must find magic
//! strings *only* when they appear as literal values.  Instead of a full
//! parser (the build environment is offline, so `syn`/`rustc` plugins are
//! unavailable), this module scans a source file once and produces:
//!
//! * `masked` — the source with every comment and every string/char literal
//!   body replaced by spaces (newlines preserved, so byte offsets and line
//!   numbers stay aligned with the original).  All code-level rules match
//!   against this buffer, which by construction contains only real tokens.
//! * `comments` — the comment texts with their lines, used to recognise
//!   `lint:allow(...)` escapes and `SAFETY:` justifications.
//! * `strings` — every string / byte-string literal value with its line,
//!   used by the persist-format rule to find re-spelled magics.
//!
//! The lexer understands line comments (`//`, `///`, `//!`), nested block
//! comments (`/* /* */ */`), cooked strings with escapes, byte strings
//! (`b"..."`), raw strings with any hash depth (`r#"..."#`, `br##"..."##`),
//! char and byte-char literals, and the lifetime-vs-char-literal ambiguity
//! (`'a` as a lifetime versus `'a'` as a literal).

/// One comment in the scanned file.
#[derive(Debug, Clone)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// Comment text without the `//` / `/*` introducers.
    pub text: String,
    /// Whether the comment is the only thing on its line (after whitespace).
    pub standalone: bool,
}

/// One string or byte-string literal in the scanned file.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// 1-based line of the opening quote.
    pub line: usize,
    /// The literal's body, exactly as spelled (escapes are not processed).
    pub value: String,
}

/// The result of scanning one source file.
#[derive(Debug)]
pub struct FileScan {
    /// Source text with comments and literal bodies blanked to spaces.
    pub masked: String,
    /// Every comment, in file order.
    pub comments: Vec<Comment>,
    /// Every string / byte-string literal, in file order.
    pub strings: Vec<StrLit>,
}

impl FileScan {
    /// Lines of the masked buffer (1-based access helper).
    #[must_use]
    pub fn masked_lines(&self) -> Vec<&str> {
        self.masked.lines().collect()
    }
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Scans `source`, producing the masked buffer plus comment and literal
/// side tables.  Invalid or truncated syntax (an unterminated string at
/// end-of-file, say) is tolerated: the lexer masks to the end of the file
/// rather than erroring, because the analyzer's job is to scan whatever is
/// on disk, compilable or not.
#[must_use]
pub fn scan(source: &str) -> FileScan {
    let bytes = source.as_bytes();
    let mut masked = bytes.to_vec();
    let mut comments = Vec::new();
    let mut strings = Vec::new();
    let mut line = 1usize;
    let mut line_start = 0usize; // byte offset of the current line's start
    let mut i = 0usize;

    // Blanks `masked[from..to]`, preserving newlines.
    let blank = |masked: &mut [u8], from: usize, to: usize| {
        for b in masked.iter_mut().take(to).skip(from) {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };

    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b'\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                let start = i;
                let mut end = i;
                while end < bytes.len() && bytes[end] != b'\n' {
                    end += 1;
                }
                let standalone = bytes[line_start..start].iter().all(u8::is_ascii_whitespace);
                comments.push(Comment {
                    line,
                    text: source[start + 2..end].to_string(),
                    standalone,
                });
                blank(&mut masked, start, end);
                i = end;
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                let start = i;
                let start_line = i;
                let standalone = bytes[line_start..start_line]
                    .iter()
                    .all(u8::is_ascii_whitespace);
                let comment_line = line;
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < bytes.len() && depth > 0 {
                    if bytes[j] == b'\n' {
                        line += 1;
                        line_start = j + 1;
                        j += 1;
                    } else if j + 1 < bytes.len() && bytes[j] == b'/' && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < bytes.len() && bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let text_end = j.saturating_sub(2).max(start + 2);
                comments.push(Comment {
                    line: comment_line,
                    text: source[start + 2..text_end].to_string(),
                    standalone,
                });
                blank(&mut masked, start, j);
                i = j;
            }
            b'"' => {
                let (value, end) = scan_cooked_string(bytes, source, i);
                strings.push(StrLit { line, value });
                blank(&mut masked, i + 1, end.saturating_sub(1));
                line += source[i..end].matches('\n').count();
                if let Some(nl) = source[i..end].rfind('\n') {
                    line_start = i + nl + 1;
                }
                i = end;
            }
            b'r' | b'b' if starts_raw_or_byte_string(bytes, i) => {
                let (body_start, value, end) = scan_prefixed_string(bytes, source, i);
                strings.push(StrLit { line, value });
                blank(&mut masked, body_start, end);
                line += source[i..end].matches('\n').count();
                if let Some(nl) = source[i..end].rfind('\n') {
                    line_start = i + nl + 1;
                }
                i = end;
            }
            b'\'' => {
                // Lifetime (`'a`) or char literal (`'a'`, `'\n'`, `b'x'`)?
                let is_char_literal = if i + 1 < bytes.len() && bytes[i + 1] == b'\\' {
                    true
                } else {
                    // `'X'` (any single char followed by a closing quote).
                    // A lifetime is `'ident` with no closing quote right
                    // after its first character; `'a'` closes immediately.
                    i + 2 < bytes.len() && bytes[i + 2] == b'\'' && bytes[i + 1] != b'\''
                };
                if is_char_literal {
                    let end = scan_char_literal(bytes, i);
                    blank(&mut masked, i + 1, end.saturating_sub(1));
                    i = end;
                } else {
                    i += 1; // lifetime: skip the quote, idents lex normally
                }
            }
            _ => {
                i += 1;
            }
        }
    }

    FileScan {
        masked: String::from_utf8_lossy(&masked).into_owned(),
        comments,
        strings,
    }
}

/// Whether `bytes[i..]` starts a raw string (`r"`, `r#`), a byte string
/// (`b"`), a raw byte string (`br"`, `br#`), or a byte char (`b'`) — and the
/// introducing letter is not just the tail of a longer identifier.
fn starts_raw_or_byte_string(bytes: &[u8], i: usize) -> bool {
    if i > 0 && is_ident_byte(bytes[i - 1]) {
        return false;
    }
    let rest = &bytes[i..];
    let after_prefix = match rest {
        [b'b', b'r', ..] => &rest[2..],
        [b'r' | b'b', ..] => &rest[1..],
        _ => return false,
    };
    // `b'x'` byte-char literals are handled here too (prefix `b` + quote).
    if rest[0] == b'b' && rest.get(1) == Some(&b'\'') {
        return true;
    }
    let hashes = after_prefix.iter().take_while(|&&b| b == b'#').count();
    // Only raw strings may carry hashes; `b##` is not a literal prefix.
    if hashes > 0 && rest[0] == b'b' && rest.get(1) != Some(&b'r') {
        return false;
    }
    after_prefix.get(hashes) == Some(&b'"')
}

/// Scans a cooked string starting at the opening quote; returns the body and
/// the byte offset one past the closing quote.
fn scan_cooked_string(bytes: &[u8], source: &str, start: usize) -> (String, usize) {
    let mut j = start + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'"' => {
                return (source[start + 1..j].to_string(), j + 1);
            }
            _ => j += 1,
        }
    }
    (source[start + 1..].to_string(), bytes.len())
}

/// Scans a `b"..."`, `b'...'`, `r"..."`, `r#"..."#`, or `br#"..."#` literal
/// starting at its prefix letter.  Returns (body start, body, end offset).
fn scan_prefixed_string(bytes: &[u8], source: &str, start: usize) -> (usize, String, usize) {
    let mut j = start;
    let mut raw = false;
    while j < bytes.len() && (bytes[j] == b'b' || bytes[j] == b'r') {
        raw |= bytes[j] == b'r';
        j += 1;
    }
    if bytes.get(j) == Some(&b'\'') {
        // Byte-char literal `b'x'`.
        let end = scan_char_literal(bytes, j);
        return (j + 1, source[j + 1..end.saturating_sub(1)].to_string(), end);
    }
    let mut hashes = 0usize;
    while bytes.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(bytes.get(j), Some(&b'"'));
    let body_start = j + 1;
    let mut k = body_start;
    while k < bytes.len() {
        if !raw && bytes[k] == b'\\' {
            k += 2;
            continue;
        }
        if bytes[k] == b'"' {
            let closing_hashes = bytes[k + 1..].iter().take_while(|&&b| b == b'#').count();
            if closing_hashes >= hashes {
                let end = k + 1 + hashes;
                return (body_start, source[body_start..k].to_string(), end);
            }
        }
        k += 1;
    }
    (body_start, source[body_start..].to_string(), bytes.len())
}

/// Scans a char literal starting at its opening quote; returns the offset one
/// past the closing quote.
fn scan_char_literal(bytes: &[u8], start: usize) -> usize {
    let mut j = start + 1;
    while j < bytes.len() {
        match bytes[j] {
            b'\\' => j += 2,
            b'\'' => return j + 1,
            b'\n' => return j, // tolerate a malformed literal
            _ => j += 1,
        }
    }
    bytes.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_line_and_doc_comments() {
        let scan = scan("let x = 1; // panic!(now)\n/// SystemTime::now\nfn f() {}\n");
        assert!(!scan.masked.contains("panic!"));
        assert!(!scan.masked.contains("SystemTime"));
        assert!(scan.masked.contains("let x = 1;"));
        assert!(scan.masked.contains("fn f() {}"));
        assert_eq!(scan.comments.len(), 2);
        assert!(scan.comments[0].text.contains("panic!(now)"));
        assert!(!scan.comments[0].standalone);
        assert!(scan.comments[1].standalone);
    }

    #[test]
    fn masks_nested_block_comments() {
        let scan = scan("a /* outer /* unwrap() */ still */ b\nc\n");
        assert!(!scan.masked.contains("unwrap"));
        assert!(!scan.masked.contains("still"));
        assert!(scan.masked.contains('a'));
        assert!(scan.masked.contains('b'));
        assert_eq!(scan.comments.len(), 1);
    }

    #[test]
    fn captures_string_bodies_and_masks_them() {
        let scan = scan(r#"let m = "ABWL1"; let p = ".unwrap()";"#);
        assert!(!scan.masked.contains("ABWL1"));
        assert!(!scan.masked.contains("unwrap"));
        assert_eq!(scan.strings.len(), 2);
        assert_eq!(scan.strings[0].value, "ABWL1");
        assert_eq!(scan.strings[1].value, ".unwrap()");
    }

    #[test]
    fn byte_and_raw_strings_are_literals_too() {
        let scan = scan("let a = b\"ABST1\"; let b = r#\"panic!(\"inner\")\"#;");
        assert!(!scan.masked.contains("ABST1"));
        assert!(!scan.masked.contains("panic!"));
        assert_eq!(scan.strings[0].value, "ABST1");
        assert_eq!(scan.strings[1].value, "panic!(\"inner\")");
    }

    #[test]
    fn raw_byte_strings_with_hashes() {
        let scan = scan("let a = br##\"x \"# y\"##; f();");
        assert_eq!(scan.strings[0].value, "x \"# y");
        assert!(scan.masked.contains("f();"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let scan = scan("fn f<'a>(x: &'a str) -> &'a str { x } let c = 'x'; let n = '\\n';");
        // If a lifetime were lexed as an unterminated char literal the rest
        // of the file would be blanked; `let c` must survive.
        assert!(scan.masked.contains("let c ="));
        assert!(!scan.masked.contains('x') || scan.masked.contains("{ x }"));
        assert!(scan.masked.contains("fn f<'a>"));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let scan = scan(r#"let s = "he said \"unwrap()\" loudly"; g();"#);
        assert!(!scan.masked.contains("unwrap"));
        assert!(scan.masked.contains("g();"));
        assert_eq!(scan.strings.len(), 1);
    }

    #[test]
    fn multiline_strings_keep_line_numbers_aligned() {
        let scan = scan("let s = \"a\nb\nc\";\nfn after() {}\n");
        let masked = scan.masked;
        // The masked buffer must have the same number of lines.
        assert_eq!(masked.matches('\n').count(), 4);
        assert!(masked.contains("fn after() {}"));
    }

    #[test]
    fn line_numbers_of_literals_after_multiline_comment() {
        let scan = scan("/* one\ntwo */\nlet m = \"ABWL1\";\n");
        assert_eq!(scan.strings[0].line, 3);
    }

    #[test]
    fn identifier_ending_in_r_is_not_raw_string() {
        let scan = scan("let var\"tail\" = 1;"); // not valid Rust, but must not panic
        assert_eq!(scan.strings.len(), 1);
        assert_eq!(scan.strings[0].value, "tail");
    }
}
