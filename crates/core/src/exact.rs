//! Exact streaming butterfly counting (the ground-truth oracle).
//!
//! The exact counter keeps the *entire* graph in memory — exactly what the
//! paper argues is prohibitive for real streams — and updates the true
//! butterfly count incrementally: the butterflies created by an insertion (or
//! destroyed by a deletion) of edge `{u, v}` are precisely the butterflies
//! that `{u, v}` forms with the current graph, which is the same per-edge
//! kernel ABACUS runs against its sample, evaluated with discovery
//! probability 1.
//!
//! The experiment harness uses it to obtain ground-truth counts for relative
//! error; it also serves as the "exact algorithm" reference point whenever a
//! memory/throughput comparison against exact counting is needed.

use crate::counter::ButterflyCounter;
use crate::stats::ProcessingStats;
use abacus_graph::persist::{Decoder, Encoder, PersistError};
use abacus_graph::{count_butterflies_with_edge, BipartiteGraph, Edge};
use abacus_stream::{EdgeDelta, StreamElement};

/// Exact streaming butterfly counter (unbounded memory).
#[derive(Debug, Clone, Default)]
pub struct ExactCounter {
    graph: BipartiteGraph,
    count: i128,
    stats: ProcessingStats,
}

impl ExactCounter {
    /// Creates an empty exact counter.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The exact butterfly count as an integer.
    #[must_use]
    pub fn exact_count(&self) -> i128 {
        self.count
    }

    /// The maintained graph (read-only).
    #[must_use]
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ProcessingStats {
        self.stats
    }
}

impl ButterflyCounter for ExactCounter {
    fn process(&mut self, element: StreamElement) {
        let is_insert = element.delta.is_insert();
        match element.delta {
            EdgeDelta::Insert => {
                // Count against the graph *before* inserting, so the edge does
                // not pair with itself.
                let per_edge = count_butterflies_with_edge(&self.graph, element.edge);
                self.count += i128::from(per_edge.butterflies);
                self.stats
                    .record_element(is_insert, per_edge.butterflies, per_edge.comparisons);
                self.graph.insert_edge(element.edge);
            }
            EdgeDelta::Delete => {
                // Remove the edge first so the kernel sees the graph without
                // it; the destroyed butterflies are those it formed with the
                // remaining edges.
                self.graph.delete_edge(element.edge);
                let per_edge = count_butterflies_with_edge(&self.graph, element.edge);
                self.count -= i128::from(per_edge.butterflies);
                self.stats
                    .record_element(is_insert, per_edge.butterflies, per_edge.comparisons);
            }
        }
    }

    fn estimate(&self) -> f64 {
        self.count as f64
    }

    fn memory_edges(&self) -> usize {
        self.graph.num_edges()
    }

    fn name(&self) -> &'static str {
        "EXACT"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn save_state(&mut self) -> Result<Vec<u8>, PersistError> {
        let mut enc = Encoder::new();
        // Hash order is history-dependent; sort so the payload depends only
        // on the live edge set.
        let mut edges: Vec<Edge> = self.graph.edges().collect();
        edges.sort_unstable_by_key(|e| (e.left, e.right));
        enc.put_usize(edges.len());
        for edge in edges {
            enc.put_u32(edge.left);
            enc.put_u32(edge.right);
        }
        enc.put_raw(&self.count.to_le_bytes());
        crate::persist::encode_stats(&mut enc, &self.stats);
        Ok(enc.finish())
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), PersistError> {
        let mut dec = Decoder::new(state);
        let num_edges = dec.get_usize()?;
        if num_edges > dec.remaining() / 8 {
            return Err(PersistError::Truncated(format!(
                "edge list claims {num_edges} edges, payload holds at most {}",
                dec.remaining() / 8
            )));
        }
        let mut graph = BipartiteGraph::new();
        for _ in 0..num_edges {
            let edge = Edge::new(dec.get_u32()?, dec.get_u32()?);
            if !graph.insert_edge(edge) {
                return Err(PersistError::Corrupt(
                    "duplicate edge in exact-counter edge list".into(),
                ));
            }
        }
        let count = i128::from_le_bytes(
            dec.get_raw(16)?
                .try_into()
                .map_err(|_| PersistError::Invariant("get_raw(16) yields 16 bytes"))?,
        );
        let stats = crate::persist::decode_stats(&mut dec)?;
        dec.expect_end()?;
        self.graph = graph;
        self.count = count;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::count_butterflies;
    use abacus_stream::generators::random::uniform_bipartite;
    use abacus_stream::{final_graph, inject_deletions_fast, DeletionConfig};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tracks_the_true_count_through_insertions_and_deletions() {
        let mut exact = ExactCounter::new();
        let stream = [
            StreamElement::insert(Edge::new(0, 10)),
            StreamElement::insert(Edge::new(0, 11)),
            StreamElement::insert(Edge::new(1, 10)),
            StreamElement::insert(Edge::new(1, 11)),
            StreamElement::insert(Edge::new(2, 10)),
            StreamElement::insert(Edge::new(2, 11)),
            StreamElement::delete(Edge::new(0, 10)),
        ];
        let expected = [0, 0, 0, 1, 1, 3, 1];
        for (element, want) in stream.iter().zip(expected) {
            exact.process(*element);
            assert_eq!(exact.exact_count(), want);
        }
        assert_eq!(exact.name(), "EXACT");
        assert_eq!(exact.memory_edges(), 5);
        assert_eq!(exact.stats().elements, 7);
    }

    #[test]
    fn matches_static_count_on_a_generated_dynamic_stream() {
        let edges = uniform_bipartite(80, 60, 1_500, &mut StdRng::seed_from_u64(1));
        let stream = inject_deletions_fast(
            &edges,
            DeletionConfig::new(0.3),
            &mut StdRng::seed_from_u64(2),
        );
        let mut exact = ExactCounter::new();
        exact.process_stream(&stream);
        let truth = count_butterflies(&final_graph(&stream));
        assert_eq!(exact.exact_count(), truth as i128);
        assert_eq!(exact.estimate(), truth as f64);
    }

    #[test]
    fn save_restore_mid_stream_is_bit_identical() {
        let edges = uniform_bipartite(60, 60, 800, &mut StdRng::seed_from_u64(5));
        let stream = inject_deletions_fast(
            &edges,
            DeletionConfig::new(0.25),
            &mut StdRng::seed_from_u64(6),
        );
        let cut = 511;

        let mut reference = ExactCounter::new();
        reference.process_stream(&stream);

        let mut source = ExactCounter::new();
        source.process_stream(&stream[..cut]);
        let payload = source.save_state().unwrap();
        let mut resumed = ExactCounter::new();
        resumed.restore_state(&payload).unwrap();
        resumed.process_stream(&stream[cut..]);

        assert_eq!(reference.exact_count(), resumed.exact_count());
        assert_eq!(reference.memory_edges(), resumed.memory_edges());
        assert_eq!(reference.stats().comparisons, resumed.stats().comparisons);
        assert_eq!(
            reference.save_state().unwrap(),
            resumed.save_state().unwrap()
        );

        // Corrupted payloads fail closed without mutating the target.
        let mut target = ExactCounter::new();
        assert!(target.restore_state(&payload[..payload.len() - 2]).is_err());
        assert_eq!(target.exact_count(), 0);
        let mut doubled = payload.clone();
        doubled.extend_from_slice(&[0, 0]);
        assert!(matches!(
            target.restore_state(&doubled),
            Err(PersistError::Corrupt(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The incremental exact counter always agrees with the batch exact
        /// algorithm on the final graph, for arbitrary valid streams.
        #[test]
        fn incremental_matches_batch(
            ops in proptest::collection::vec((any::<bool>(), 0u32..9, 0u32..9), 1..150),
        ) {
            use std::collections::BTreeSet;
            let mut live: BTreeSet<(u32, u32)> = BTreeSet::new();
            let mut exact = ExactCounter::new();
            for (want_insert, l, r) in ops {
                let e = Edge::new(l, r);
                if want_insert {
                    if live.insert((l, r)) {
                        exact.process(StreamElement::insert(e));
                    }
                } else if live.remove(&(l, r)) {
                    exact.process(StreamElement::delete(e));
                }
                // Invariant maintained continuously, not just at the end.
                let truth = count_butterflies(exact.graph());
                prop_assert_eq!(exact.exact_count(), truth as i128);
            }
        }
    }
}
