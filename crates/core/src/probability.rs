//! Butterfly-discovery probability (Eq. 1) and the unbiased increment rule.
//!
//! When element `e(t) = ({u, v}, δ)` arrives, a butterfly `{u, v, w, x}` that
//! it creates (or destroys) is *discovered* by ABACUS iff the three
//! complementary edges `{u, x}`, `{w, x}`, `{w, v}` are all in the sample.
//! Because Random Pairing keeps the sample uniform, the probability that any
//! three fixed distinct live edges are simultaneously sampled is
//!
//! ```text
//! Pr(|E|, c_b, c_g) = y/T · (y−1)/(T−1) · (y−2)/(T−2)
//!   with  T = |E| + c_b + c_g   and   y = min(k, T)
//! ```
//!
//! (Lemma 1).  Adding `sgn(δ) / Pr` for every discovered butterfly makes the
//! expected total adjustment per created/deleted butterfly exactly ±1, which
//! is what yields unbiasedness (Theorem 1).

use abacus_sampling::RandomPairingState;

/// The discovery probability `Pr(|E|, c_b, c_g)` of Eq. 1 for a memory budget
/// `k` and the Random Pairing state *before* the incoming element is applied.
///
/// Degenerate cases: with `T < 3` the whole population fits in the sample and
/// no three distinct edges exist, so the probability is reported as 1 (any
/// discovered structure was seen with certainty); a probability of exactly 0
/// can only be returned when the budget `k < 3`, in which case no butterfly is
/// ever discoverable and the caller must not divide by it.
#[must_use]
pub fn discovery_probability(budget: usize, state: RandomPairingState) -> f64 {
    let t = state.population();
    let y = budget.min(t);
    if t <= y {
        // The sample can hold the entire population: every edge is sampled.
        return 1.0;
    }
    if y < 3 {
        return 0.0;
    }
    let t = t as f64;
    let y = y as f64;
    (y / t) * ((y - 1.0) / (t - 1.0)) * ((y - 2.0) / (t - 2.0))
}

/// The per-butterfly increment `sgn(δ) / Pr` (Algorithm 1, line 6).
///
/// Returns 0 when the probability is 0, which can only happen when no
/// butterfly can be discovered in the first place (budget < 3), keeping the
/// estimator well-defined instead of producing infinities.
#[must_use]
pub fn increment(budget: usize, state: RandomPairingState, is_insert: bool) -> f64 {
    let p = discovery_probability(budget, state);
    if p <= 0.0 {
        return 0.0;
    }
    let sign = if is_insert { 1.0 } else { -1.0 };
    sign / p
}

/// The variance upper bound of Theorem 2:
///
/// ```text
/// Var[c] ≤ γ·E[c] + 2·γ²·C(E[c], 2)·C(|E|−6, k−6)/C(|E|, k) − E[c]²
/// with γ = C(|E|, k) / C(|E|−4, k−4)
/// ```
///
/// where `expected_count = E[c]` equals the true butterfly count (Theorem 1),
/// `live_edges = |E|` is the number of live edges and `budget = k` the sample
/// size.  The binomial ratios telescope into short products, so no large
/// factorials are ever materialised.
///
/// When the sample covers the whole graph (`k ≥ |E|`) the estimator is exact
/// and the bound degenerates to 0.
#[must_use]
pub fn variance_upper_bound(budget: usize, live_edges: usize, expected_count: f64) -> f64 {
    if live_edges <= budget {
        return 0.0;
    }
    if budget < 4 {
        // A butterfly needs four edges; with fewer sampled edges than that the
        // scaling factor γ is unbounded and the theorem gives no finite bound.
        return f64::INFINITY;
    }
    let e = live_edges as f64;
    let k = budget as f64;
    // γ = C(E, k) / C(E−4, k−4) = Π_{i=0..3} (E − i) / (k − i).
    let gamma: f64 = (0..4).map(|i| (e - i as f64) / (k - i as f64)).product();
    // C(E−6, k−6) / C(E, k) = Π_{i=0..5} (k − i) / (E − i); zero when k < 6
    // (two butterflies sharing two edges can never be co-sampled).
    let shared_two_edges: f64 = if budget < 6 {
        0.0
    } else {
        (0..6).map(|i| (k - i as f64) / (e - i as f64)).product()
    };
    let pairs = expected_count * (expected_count - 1.0) / 2.0;
    gamma * expected_count + 2.0 * gamma * gamma * pairs * shared_two_edges
        - expected_count * expected_count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(live: usize, bad: usize, good: usize) -> RandomPairingState {
        RandomPairingState {
            live_items: live,
            bad_deletions: bad,
            good_deletions: good,
        }
    }

    #[test]
    fn full_sample_has_probability_one() {
        // Budget covers the whole population: certainty.
        assert_eq!(discovery_probability(10, state(5, 0, 0)), 1.0);
        assert_eq!(discovery_probability(10, state(10, 0, 0)), 1.0);
        assert_eq!(discovery_probability(10, state(2, 0, 0)), 1.0);
    }

    #[test]
    fn matches_equation_one() {
        // k = 5, |E| = 10, no outstanding deletions:
        // p = 5/10 * 4/9 * 3/8 = 1/12.
        let p = discovery_probability(5, state(10, 0, 0));
        assert!((p - (5.0 / 10.0) * (4.0 / 9.0) * (3.0 / 8.0)).abs() < 1e-12);
    }

    #[test]
    fn compensation_counters_enter_the_population() {
        // T = |E| + cb + cg = 10 + 2 + 3 = 15, y = min(6, 15) = 6.
        let p = discovery_probability(6, state(10, 2, 3));
        let expected = (6.0 / 15.0) * (5.0 / 14.0) * (4.0 / 13.0);
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn tiny_budget_yields_zero_probability() {
        assert_eq!(discovery_probability(2, state(100, 0, 0)), 0.0);
        assert_eq!(increment(2, state(100, 0, 0), true), 0.0);
    }

    #[test]
    fn probability_is_monotone_in_budget() {
        let mut last = 0.0;
        for k in 3..50 {
            let p = discovery_probability(k, state(100, 0, 0));
            assert!(p >= last, "k={k}");
            assert!(p <= 1.0);
            last = p;
        }
    }

    #[test]
    fn probability_decreases_with_population() {
        let mut last = 1.0;
        for e in [10usize, 20, 50, 100, 1000] {
            let p = discovery_probability(10, state(e, 0, 0));
            assert!(p <= last, "|E|={e}");
            last = p;
        }
    }

    #[test]
    fn variance_bound_degenerate_cases() {
        // Full coverage: exact estimator, zero variance.
        assert_eq!(variance_upper_bound(100, 50, 12.0), 0.0);
        // Too small a budget: no finite bound.
        assert!(variance_upper_bound(3, 100, 12.0).is_infinite());
        // k < 6: the shared-two-edges term vanishes but the bound stays finite.
        let bound = variance_upper_bound(5, 100, 2.0);
        assert!(bound.is_finite());
        assert!(bound >= 0.0);
    }

    #[test]
    fn variance_bound_matches_hand_computation() {
        // |E| = 10, k = 6, E[c] = 3.
        let e = 10.0f64;
        let k = 6.0f64;
        let gamma =
            (e / k) * ((e - 1.0) / (k - 1.0)) * ((e - 2.0) / (k - 2.0)) * ((e - 3.0) / (k - 3.0));
        let shared: f64 = (0..6).map(|i| (k - i as f64) / (e - i as f64)).product();
        let expected = gamma * 3.0 + 2.0 * gamma * gamma * 3.0 * shared - 9.0;
        let got = variance_upper_bound(6, 10, 3.0);
        assert!((got - expected).abs() < 1e-9, "{got} vs {expected}");
    }

    #[test]
    fn variance_bound_shrinks_with_budget() {
        // For a fixed population and expected count, a larger sample can only
        // tighten the bound.
        let mut last = f64::INFINITY;
        for k in [6usize, 10, 20, 50, 90] {
            let bound = variance_upper_bound(k, 100, 5.0);
            assert!(bound <= last + 1e-9, "k={k}: {bound} > {last}");
            assert!(bound >= -1e-9);
            last = bound;
        }
    }

    #[test]
    fn increment_sign_follows_delta() {
        let s = state(50, 0, 0);
        let up = increment(10, s, true);
        let down = increment(10, s, false);
        assert!(up > 0.0);
        assert!((up + down).abs() < 1e-12);
        // Reciprocal relation.
        assert!((up * discovery_probability(10, s) - 1.0).abs() < 1e-12);
    }
}
