//! Typed errors of the engine layer: construction failures and the
//! per-replica fault taxonomy the ensemble supervisor quarantines on.

/// Construction-time errors of the engine registry.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// An ensemble was requested with zero replicas.
    ZeroReplicas,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ZeroReplicas => f.write_str("an ensemble needs at least one replica"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Why a supervised replica was quarantined.
///
/// Replica work runs under `catch_unwind`; persistence goes through the
/// bounded-retry layer first.  A `ReplicaError` is therefore always a
/// *post-containment* fact: the panic was caught, or the retry budget was
/// exhausted, and the rest of the ensemble kept serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// The replica's worker panicked; the payload message is preserved.
    Panicked(String),
    /// The replica's WAL/snapshot persistence failed after bounded retry.
    Persist(String),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::Panicked(message) => {
                write!(f, "replica worker panicked: {message}")
            }
            ReplicaError::Persist(message) => {
                write!(f, "replica persistence failed after retries: {message}")
            }
        }
    }
}

impl std::error::Error for ReplicaError {}

/// Extracts a human-readable message from a caught panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<&str>() {
        (*message).to_string()
    } else if let Some(message) = payload.downcast_ref::<String>() {
        message.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        assert_eq!(
            EngineError::ZeroReplicas.to_string(),
            "an ensemble needs at least one replica"
        );
        assert_eq!(
            ReplicaError::Panicked("boom".into()).to_string(),
            "replica worker panicked: boom"
        );
        assert_eq!(
            ReplicaError::Persist("disk on fire".into()).to_string(),
            "replica persistence failed after retries: disk on fire"
        );
    }

    #[test]
    fn panic_payloads_downcast_to_messages() {
        let caught = std::panic::catch_unwind(|| panic!("static message")).expect_err("must panic");
        assert_eq!(panic_message(caught), "static message");
        let caught = std::panic::catch_unwind(|| panic!("formatted {}", 7)).expect_err("panics");
        assert_eq!(panic_message(caught), "formatted 7");
    }
}
