//! [`Ensemble`]: K independent estimator replicas behind one
//! [`ButterflyCounter`] face.
//!
//! The single-instance estimators bound their variance only through the
//! memory budget.  An ensemble adds a second, horizontally scalable axis:
//!
//! * **Replicate mode** — every replica sees the *full* stream with an
//!   independently derived seed; the ensemble estimate is the **mean** of
//!   the replica estimates.  Replicas are i.i.d., so averaging K of them
//!   cuts the estimator variance by ~K at the cost of K× the memory and
//!   work — the classic multi-sample trick of FLEET-style sketches.  The
//!   replica spread is surfaced as a sample standard deviation and a 95%
//!   confidence interval ([`Ensemble::replicate_summary`]), which the bare
//!   estimators cannot provide from a single run.
//! * **Partition mode** — each edge is hash-routed to exactly **one**
//!   replica (deletions follow their insertions, since routing is a pure
//!   function of the edge), and the ensemble estimate is the **sum** of the
//!   per-shard estimates.  Memory and work shard K ways, but a butterfly is
//!   only observed if all four of its edges landed in the same shard:
//!   partition estimates are *per-shard local counts* and systematically
//!   miss cross-shard butterflies.  Partition mode is therefore a
//!   throughput/locality tool, not an unbiased global estimator — the
//!   trade-off is documented rather than hidden.
//!
//! # Exactness discipline
//!
//! A `K = 1` replicate ensemble is **bit-identical** to the bare estimator
//! built from the same spec: replica 0 inherits the base seed
//! ([`derive_seed`]`(base, 0) == base`), every element reaches the replica's
//! `process` in stream order, and the single `finish` happens at the end of
//! the source — exactly the contract of the bare driver.  Fan-out threads
//! never change results either: each replica is owned by exactly one worker
//! per chunk and processes its elements sequentially, and estimates are
//! merged in replica-index order, so the merged estimate is bit-reproducible
//! across thread counts and interleavings.  Both properties are asserted by
//! `tests/ensemble_parity.rs`.

use crate::counter::ButterflyCounter;
use crate::engine::EstimatorSpec;
use abacus_graph::persist::{Decoder, Encoder, PersistError};
use abacus_sampling::{derive_seed, splitmix64};
use abacus_stream::{ElementSource, StreamElement, StreamIoError};
use serde::{Deserialize, Serialize};

/// How the ensemble distributes the stream across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EnsembleMode {
    /// Every replica processes the full stream under an independent seed;
    /// the ensemble estimate is the mean of the replica estimates (variance
    /// ↓ ~K× at K× the memory).  The default.
    #[default]
    Replicate,
    /// Each edge is hash-routed to one replica; the ensemble estimate is
    /// the sum of per-shard estimates.  Memory and work shard K ways, but
    /// cross-shard butterflies are not observed (per-shard local counts).
    Partition,
}

impl EnsembleMode {
    /// The canonical choice list, phrased for error messages.
    pub const EXPECTED_NAMES: &'static str = "replicate or partition";

    /// The canonical (lower-case) name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EnsembleMode::Replicate => "replicate",
            EnsembleMode::Partition => "partition",
        }
    }

    /// Parses a mode from its canonical name, case-insensitively.
    ///
    /// # Errors
    /// Returns [`EnsembleMode::EXPECTED_NAMES`] for anything unrecognised.
    pub fn parse(raw: &str) -> Result<Self, &'static str> {
        match raw.to_ascii_lowercase().as_str() {
            "replicate" => Ok(EnsembleMode::Replicate),
            "partition" => Ok(EnsembleMode::Partition),
            _ => Err(Self::EXPECTED_NAMES),
        }
    }
}

impl std::str::FromStr for EnsembleMode {
    type Err = &'static str;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        EnsembleMode::parse(raw)
    }
}

impl std::fmt::Display for EnsembleMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Replica-spread statistics of a replicate-mode ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleSummary {
    /// Mean of the replica estimates (the ensemble estimate).
    pub mean: f64,
    /// Sample standard deviation (n−1) of the replica estimates; 0 for K=1.
    pub std_dev: f64,
    /// Standard error of the mean, `std_dev / sqrt(K)`.
    pub std_err: f64,
    /// Half-width of the normal-approximation 95% confidence interval,
    /// `1.96 · std_err`.  (K is small, so treat it as indicative, not a
    /// calibrated guarantee.)
    pub ci95_half_width: f64,
}

/// K estimator replicas driven as one [`ButterflyCounter`].
///
/// Replicas are built once, from per-replica specs whose seeds come from
/// [`derive_seed`], and live for the whole stream.  The single-element
/// [`process`](ButterflyCounter::process) path feeds them inline; the
/// pull-based [`process_source_chunked`](ButterflyCounter::process_source_chunked)
/// path stages one chunk at a time and fans it out to up to
/// [`fan_out_threads`](Ensemble::with_fan_out_threads) worker threads, each
/// worker owning a disjoint set of replicas for the duration of the chunk.
///
/// ```
/// use abacus_core::engine::{Ensemble, EnsembleMode, EstimatorSpec};
/// use abacus_core::ButterflyCounter;
/// use abacus_graph::Edge;
/// use abacus_stream::StreamElement;
///
/// let mut ensemble = Ensemble::new(EstimatorSpec::abacus(64), 4, EnsembleMode::Replicate);
/// for l in 0..2u32 {
///     for r in 0..2u32 {
///         ensemble.process(StreamElement::insert(Edge::new(l, r)));
///     }
/// }
/// // Budget covers the stream: all four replicas are exact, so the mean is too.
/// assert_eq!(ensemble.estimate(), 1.0);
/// assert_eq!(ensemble.replicas(), 4);
/// ```
pub struct Ensemble {
    base: EstimatorSpec,
    mode: EnsembleMode,
    replicas: Vec<Box<dyn ButterflyCounter + Send>>,
    fan_out_threads: usize,
    /// Per-replica routing buffers (partition mode), reused across chunks.
    routed: Vec<Vec<StreamElement>>,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field("base", &self.base)
            .field("mode", &self.mode)
            .field("replicas", &self.replicas.len())
            .field("fan_out_threads", &self.fan_out_threads)
            .finish()
    }
}

impl Ensemble {
    /// Builds an ensemble of `replicas` copies of `base`, each constructed
    /// through the engine registry with seed `derive_seed(base.seed, i)`.
    ///
    /// Every replica gets the full per-replica budget `base.budget`; for a
    /// fixed *total* memory comparison, divide the budget before calling
    /// (`base.budget / replicas`).
    ///
    /// # Panics
    /// Panics if `replicas` is zero.
    #[must_use]
    pub fn new(base: EstimatorSpec, replicas: usize, mode: EnsembleMode) -> Self {
        assert!(replicas >= 1, "an ensemble needs at least one replica");
        let replicas = (0..replicas as u64)
            .map(|i| base.with_seed(derive_seed(base.seed, i)).build())
            .collect();
        Ensemble {
            base,
            mode,
            replicas,
            fan_out_threads: 1,
            routed: Vec::new(),
        }
    }

    /// Returns the ensemble with a different fan-out worker count for the
    /// chunked source driver (default 1 = inline).  Thread count never
    /// affects results, only wall time.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_fan_out_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one fan-out thread is required");
        self.fan_out_threads = threads;
        self
    }

    /// Number of replicas K.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The distribution mode.
    #[must_use]
    pub fn mode(&self) -> EnsembleMode {
        self.mode
    }

    /// The base spec the replicas were derived from.
    #[must_use]
    pub fn spec(&self) -> EstimatorSpec {
        self.base
    }

    /// Read access to replica `index`, for introspection and parity tests
    /// (downcast through [`ButterflyCounter::as_any`]).
    #[must_use]
    pub fn replica(&self, index: usize) -> &dyn ButterflyCounter {
        &*self.replicas[index]
    }

    /// The current per-replica estimates, in replica order.
    #[must_use]
    pub fn replica_estimates(&self) -> Vec<f64> {
        self.replicas.iter().map(|r| r.estimate()).collect()
    }

    /// Replica-spread statistics — replicate mode only (`None` under
    /// partition, where replicas estimate disjoint shards and their spread
    /// is not an error bar).
    #[must_use]
    pub fn replicate_summary(&self) -> Option<EnsembleSummary> {
        if self.mode != EnsembleMode::Replicate {
            return None;
        }
        let summary = abacus_metrics::Summary::from_values(self.replica_estimates());
        let mean = summary.mean();
        let std_dev = summary.std_dev();
        let std_err = std_dev / (summary.count() as f64).sqrt();
        Some(EnsembleSummary {
            mean,
            std_dev,
            std_err,
            ci95_half_width: 1.96 * std_err,
        })
    }

    /// The shard an edge routes to in partition mode: a splitmix64 avalanche
    /// of the packed edge key, reduced mod K.  Purely a function of the
    /// edge, so a deletion always follows its insertion to the same shard.
    fn route(&self, element: StreamElement) -> usize {
        // Full-width avalanche so shard occupancy is balanced even for the
        // generators' sequential vertex ids.
        (splitmix64(element.edge.key().0) % self.replicas.len() as u64) as usize
    }

    /// Merges the replica estimates in replica-index order (deterministic
    /// regardless of which worker drove which replica).
    fn merged_estimate(&self) -> f64 {
        let sum: f64 = self.replicas.iter().map(|r| r.estimate()).sum();
        match self.mode {
            EnsembleMode::Replicate => sum / self.replicas.len() as f64,
            EnsembleMode::Partition => sum,
        }
    }

    /// Drives one staged chunk through every replica, fanning out to worker
    /// threads when configured.  Each replica is owned by exactly one worker
    /// for the duration of the chunk and sees its elements in stream order,
    /// so results are independent of the thread count.
    fn dispatch_chunk(&mut self, staged: &[StreamElement]) {
        if staged.is_empty() {
            return;
        }
        let workers = self.fan_out_threads.min(self.replicas.len());
        match self.mode {
            EnsembleMode::Replicate => {
                if workers <= 1 {
                    for replica in &mut self.replicas {
                        for &element in staged {
                            replica.process(element);
                        }
                    }
                } else {
                    let per_worker = self.replicas.len().div_ceil(workers);
                    std::thread::scope(|scope| {
                        for group in self.replicas.chunks_mut(per_worker) {
                            scope.spawn(move || {
                                for replica in group {
                                    for &element in staged {
                                        replica.process(element);
                                    }
                                }
                            });
                        }
                    });
                }
            }
            EnsembleMode::Partition => {
                self.routed.resize_with(self.replicas.len(), Vec::new);
                for buffer in &mut self.routed {
                    buffer.clear();
                }
                for &element in staged {
                    let shard = self.route(element);
                    self.routed[shard].push(element);
                }
                if workers <= 1 {
                    for (replica, buffer) in self.replicas.iter_mut().zip(&self.routed) {
                        for &element in buffer {
                            replica.process(element);
                        }
                    }
                } else {
                    let per_worker = self.replicas.len().div_ceil(workers);
                    let routed = &self.routed;
                    std::thread::scope(|scope| {
                        for (group_index, group) in self.replicas.chunks_mut(per_worker).enumerate()
                        {
                            scope.spawn(move || {
                                let start = group_index * per_worker;
                                for (offset, replica) in group.iter_mut().enumerate() {
                                    for &element in &routed[start + offset] {
                                        replica.process(element);
                                    }
                                }
                            });
                        }
                    });
                }
            }
        }
    }
}

impl ButterflyCounter for Ensemble {
    fn process(&mut self, element: StreamElement) {
        match self.mode {
            EnsembleMode::Replicate => {
                for replica in &mut self.replicas {
                    replica.process(element);
                }
            }
            EnsembleMode::Partition => {
                let shard = self.route(element);
                self.replicas[shard].process(element);
            }
        }
    }

    fn preferred_chunk(&self) -> usize {
        // Replicas are homogeneous; honour their staging preference so a
        // PARABACUS ensemble stages whole mini-batches per pull.
        self.replicas[0].preferred_chunk()
    }

    fn process_source_chunked(
        &mut self,
        source: &mut dyn ElementSource,
        chunk: usize,
    ) -> Result<u64, StreamIoError> {
        assert!(chunk >= 1, "pull chunk must hold at least one element");
        let mut staged: Vec<StreamElement> = Vec::new();
        let mut total = 0u64;
        loop {
            staged.clear();
            while staged.len() < chunk {
                match source.next_element() {
                    Some(Ok(element)) => staged.push(element),
                    Some(Err(error)) => return Err(error),
                    None => break,
                }
            }
            total += staged.len() as u64;
            self.dispatch_chunk(&staged);
            if staged.len() < chunk {
                break; // the source is exhausted
            }
        }
        self.finish();
        Ok(total)
    }

    fn estimate(&self) -> f64 {
        self.merged_estimate()
    }

    fn finish(&mut self) -> f64 {
        for replica in &mut self.replicas {
            replica.finish();
        }
        self.merged_estimate()
    }

    fn memory_edges(&self) -> usize {
        self.replicas.iter().map(|r| r.memory_edges()).sum()
    }

    fn name(&self) -> &'static str {
        match self.mode {
            EnsembleMode::Replicate => "ENSEMBLE-replicate",
            EnsembleMode::Partition => "ENSEMBLE-partition",
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    /// One payload holding every replica's state as a length-prefixed
    /// section, so an ensemble checkpoints and recovers as a single unit —
    /// replica `i` restores to exactly the state of replica `i`, which keeps
    /// `derive_seed(base.seed, i)` streams aligned across a crash.
    fn save_state(&mut self) -> Result<Vec<u8>, PersistError> {
        let mut enc = Encoder::new();
        enc.put_usize(self.replicas.len());
        enc.put_u8(match self.mode {
            EnsembleMode::Replicate => 0,
            EnsembleMode::Partition => 1,
        });
        for replica in &mut self.replicas {
            let section = replica.save_state()?;
            enc.put_bytes(&section);
        }
        Ok(enc.finish())
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), PersistError> {
        let mut dec = Decoder::new(state);
        let replicas = dec.get_usize()?;
        if replicas != self.replicas.len() {
            return Err(PersistError::Corrupt(format!(
                "ensemble snapshot holds {replicas} replicas, this ensemble has {}",
                self.replicas.len()
            )));
        }
        let mode = match dec.get_u8()? {
            0 => EnsembleMode::Replicate,
            1 => EnsembleMode::Partition,
            other => {
                return Err(PersistError::Corrupt(format!(
                    "invalid ensemble mode byte {other}"
                )))
            }
        };
        if mode != self.mode {
            return Err(PersistError::Corrupt(
                "ensemble snapshot was written under a different distribution mode".into(),
            ));
        }
        for replica in &mut self.replicas {
            let section = dec.get_bytes()?;
            replica.restore_state(section)?;
        }
        dec.expect_end()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EstimatorKind;
    use abacus_graph::Edge;
    use abacus_stream::generators::random::uniform_bipartite;
    use abacus_stream::{inject_deletions_fast, DeletionConfig, SliceSource};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(edges: usize) -> Vec<StreamElement> {
        let base = uniform_bipartite(60, 60, edges, &mut StdRng::seed_from_u64(5));
        inject_deletions_fast(
            &base,
            DeletionConfig::new(0.2),
            &mut StdRng::seed_from_u64(6),
        )
    }

    #[test]
    fn mode_names_parse_and_display() {
        assert_eq!(
            EnsembleMode::parse("replicate").unwrap(),
            EnsembleMode::Replicate
        );
        assert_eq!(
            EnsembleMode::parse("PARTITION").unwrap(),
            EnsembleMode::Partition
        );
        assert_eq!(
            EnsembleMode::parse("shard").unwrap_err(),
            EnsembleMode::EXPECTED_NAMES
        );
        assert_eq!(EnsembleMode::Replicate.to_string(), "replicate");
        assert_eq!(EnsembleMode::default(), EnsembleMode::Replicate);
    }

    #[test]
    fn replicate_estimate_is_the_mean_of_the_replicas() {
        let stream = workload(800);
        let mut ensemble = Ensemble::new(
            EstimatorSpec::abacus(128).with_seed(3),
            4,
            EnsembleMode::Replicate,
        );
        ensemble.process_stream(&stream);
        let estimates = ensemble.replica_estimates();
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        assert_eq!(ensemble.estimate().to_bits(), mean.to_bits());
        let summary = ensemble.replicate_summary().unwrap();
        assert_eq!(summary.mean.to_bits(), mean.to_bits());
        assert!(summary.std_dev >= 0.0);
        assert!((summary.ci95_half_width - 1.96 * summary.std_err).abs() < 1e-12);
        // Replicas drew different seeds, so (with a sub-covering budget)
        // their trajectories differ.
        assert!(
            estimates.windows(2).any(|w| w[0] != w[1]),
            "replicas appear seed-correlated: {estimates:?}"
        );
    }

    #[test]
    fn partition_routes_every_element_to_exactly_one_shard() {
        let stream = workload(600);
        let mut ensemble = Ensemble::new(EstimatorSpec::exact(), 3, EnsembleMode::Partition);
        ensemble.process_stream(&stream);
        // Shards partition the stream: element counts over the exact
        // replicas sum to the stream length.
        let processed: u64 = (0..3)
            .map(|i| {
                ensemble
                    .replica(i)
                    .as_any()
                    .unwrap()
                    .downcast_ref::<crate::ExactCounter>()
                    .unwrap()
                    .stats()
                    .elements
            })
            .sum();
        assert_eq!(processed, stream.len() as u64);
        // And the ensemble estimate is the sum of the shard counts.
        let sum: f64 = ensemble.replica_estimates().iter().sum();
        assert_eq!(ensemble.estimate().to_bits(), sum.to_bits());
        assert!(ensemble.replicate_summary().is_none());
    }

    #[test]
    fn partition_deletions_follow_their_insertions() {
        // Insert then delete the same edge: both must land on one shard, so
        // every shard's final graph is empty.
        let mut ensemble = Ensemble::new(EstimatorSpec::exact(), 4, EnsembleMode::Partition);
        let mut stream = Vec::new();
        for l in 0..20u32 {
            for r in 0..5u32 {
                stream.push(StreamElement::insert(Edge::new(l, r)));
            }
        }
        for element in &stream.clone() {
            stream.push(StreamElement::delete(element.edge));
        }
        ensemble.process_stream(&stream);
        assert_eq!(ensemble.estimate(), 0.0);
        assert_eq!(ensemble.memory_edges(), 0);
    }

    #[test]
    fn fan_out_threads_do_not_change_results() {
        let stream = workload(900);
        for mode in [EnsembleMode::Replicate, EnsembleMode::Partition] {
            let fingerprint = |threads: usize| {
                let mut ensemble = Ensemble::new(EstimatorSpec::abacus(100).with_seed(11), 3, mode)
                    .with_fan_out_threads(threads);
                ensemble
                    .process_source_chunked(&mut SliceSource::new(&stream), 64)
                    .unwrap();
                (
                    ensemble.estimate().to_bits(),
                    ensemble
                        .replica_estimates()
                        .iter()
                        .map(|e| e.to_bits())
                        .collect::<Vec<_>>(),
                    ensemble.memory_edges(),
                )
            };
            let single = fingerprint(1);
            for threads in [2usize, 3, 8] {
                assert_eq!(fingerprint(threads), single, "{mode} threads {threads}");
            }
        }
    }

    #[test]
    fn ensemble_drives_parabacus_replicas_with_their_preferred_chunk() {
        let ensemble = Ensemble::new(
            EstimatorSpec::parabacus(64)
                .with_batch_size(77)
                .with_threads(1),
            2,
            EnsembleMode::Replicate,
        );
        assert_eq!(ensemble.preferred_chunk(), 77);
        assert_eq!(ensemble.spec().kind, EstimatorKind::ParAbacus);
        assert_eq!(ensemble.name(), "ENSEMBLE-replicate");
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        let _ = Ensemble::new(EstimatorSpec::abacus(64), 0, EnsembleMode::Replicate);
    }
}
