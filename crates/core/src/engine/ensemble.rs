//! [`Ensemble`]: K independent estimator replicas behind one
//! [`ButterflyCounter`] face.
//!
//! The single-instance estimators bound their variance only through the
//! memory budget.  An ensemble adds a second, horizontally scalable axis:
//!
//! * **Replicate mode** — every replica sees the *full* stream with an
//!   independently derived seed; the ensemble estimate is the **mean** of
//!   the replica estimates.  Replicas are i.i.d., so averaging K of them
//!   cuts the estimator variance by ~K at the cost of K× the memory and
//!   work — the classic multi-sample trick of FLEET-style sketches.  The
//!   replica spread is surfaced as a sample standard deviation and a 95%
//!   confidence interval ([`Ensemble::replicate_summary`]), which the bare
//!   estimators cannot provide from a single run.
//! * **Partition mode** — each edge is hash-routed to exactly **one**
//!   replica (deletions follow their insertions, since routing is a pure
//!   function of the edge), and the ensemble estimate is the **sum** of the
//!   per-shard estimates.  Memory and work shard K ways, but a butterfly is
//!   only observed if all four of its edges landed in the same shard:
//!   partition estimates are *per-shard local counts* and systematically
//!   miss cross-shard butterflies.  Partition mode is therefore a
//!   throughput/locality tool, not an unbiased global estimator — the
//!   trade-off is documented rather than hidden.
//!
//! # Exactness discipline
//!
//! A `K = 1` replicate ensemble is **bit-identical** to the bare estimator
//! built from the same spec: replica 0 inherits the base seed
//! ([`derive_seed`]`(base, 0) == base`), every element reaches the replica's
//! `process` in stream order, and the single `finish` happens at the end of
//! the source — exactly the contract of the bare driver.  Fan-out threads
//! never change results either: each replica is owned by exactly one worker
//! per chunk and processes its elements sequentially, and estimates are
//! merged in replica-index order, so the merged estimate is bit-reproducible
//! across thread counts and interleavings.  Both properties are asserted by
//! `tests/ensemble_parity.rs`.

use crate::counter::ButterflyCounter;
use crate::engine::error::panic_message;
use crate::engine::{EngineError, EstimatorSpec, ReplicaError};
use abacus_graph::persist::{Decoder, Encoder, PersistError};
use abacus_metrics::{HealthReport, QuarantineRecord};
use abacus_sampling::{derive_seed, splitmix64};
use abacus_stream::fault::{ReplicaFault, ReplicaFaultKind};
use abacus_stream::persist::{with_retry, RetryPolicy};
use abacus_stream::{ElementSource, StreamElement, StreamIoError};
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// How the ensemble distributes the stream across replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum EnsembleMode {
    /// Every replica processes the full stream under an independent seed;
    /// the ensemble estimate is the mean of the replica estimates (variance
    /// ↓ ~K× at K× the memory).  The default.
    #[default]
    Replicate,
    /// Each edge is hash-routed to one replica; the ensemble estimate is
    /// the sum of per-shard estimates.  Memory and work shard K ways, but
    /// cross-shard butterflies are not observed (per-shard local counts).
    Partition,
}

impl EnsembleMode {
    /// The canonical choice list, phrased for error messages.
    pub const EXPECTED_NAMES: &'static str = "replicate or partition";

    /// The canonical (lower-case) name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EnsembleMode::Replicate => "replicate",
            EnsembleMode::Partition => "partition",
        }
    }

    /// Parses a mode from its canonical name, case-insensitively.
    ///
    /// # Errors
    /// Returns [`EnsembleMode::EXPECTED_NAMES`] for anything unrecognised.
    pub fn parse(raw: &str) -> Result<Self, &'static str> {
        match raw.to_ascii_lowercase().as_str() {
            "replicate" => Ok(EnsembleMode::Replicate),
            "partition" => Ok(EnsembleMode::Partition),
            _ => Err(Self::EXPECTED_NAMES),
        }
    }
}

impl std::str::FromStr for EnsembleMode {
    type Err = &'static str;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        EnsembleMode::parse(raw)
    }
}

impl std::fmt::Display for EnsembleMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Replica-spread statistics of a replicate-mode ensemble.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnsembleSummary {
    /// Mean of the replica estimates (the ensemble estimate).
    pub mean: f64,
    /// Sample standard deviation (n−1) of the replica estimates; 0 for K=1.
    pub std_dev: f64,
    /// Standard error of the mean, `std_dev / sqrt(K)`.
    pub std_err: f64,
    /// Half-width of the normal-approximation 95% confidence interval,
    /// `1.96 · std_err`.  (K is small, so treat it as indicative, not a
    /// calibrated guarantee.)
    pub ci95_half_width: f64,
}

/// K estimator replicas driven as one [`ButterflyCounter`].
///
/// Replicas are built once, from per-replica specs whose seeds come from
/// [`derive_seed`], and live for the whole stream.  The single-element
/// [`process`](ButterflyCounter::process) path feeds them inline; the
/// pull-based [`process_source_chunked`](ButterflyCounter::process_source_chunked)
/// path stages one chunk at a time and fans it out to up to
/// [`fan_out_threads`](Ensemble::with_fan_out_threads) worker threads, each
/// worker owning a disjoint set of replicas for the duration of the chunk.
///
/// ```
/// use abacus_core::engine::{Ensemble, EnsembleMode, EstimatorSpec};
/// use abacus_core::ButterflyCounter;
/// use abacus_graph::Edge;
/// use abacus_stream::StreamElement;
///
/// let mut ensemble =
///     Ensemble::new(EstimatorSpec::abacus(64), 4, EnsembleMode::Replicate).unwrap();
/// for l in 0..2u32 {
///     for r in 0..2u32 {
///         ensemble.process(StreamElement::insert(Edge::new(l, r)));
///     }
/// }
/// // Budget covers the stream: all four replicas are exact, so the mean is too.
/// assert_eq!(ensemble.estimate(), 1.0);
/// assert_eq!(ensemble.replicas(), 4);
/// ```
///
/// # Supervision
///
/// By default an ensemble is *fail-stop*: a panicking replica propagates,
/// exactly like the bare estimator it wraps.  Calling
/// [`with_supervision`](Ensemble::with_supervision) (or
/// [`with_replica_faults`](Ensemble::with_replica_faults), which implies it)
/// switches replica work to run under `catch_unwind`: a panicking replica is
/// **quarantined** — recorded in the [`HealthReport`], excluded from every
/// merge — and the ensemble keeps serving a degraded estimate over the
/// healthy replicas.  Replicate-mode summaries are then honestly computed
/// over the reduced K (wider CI); partition mode keeps serving the healthy
/// shards' partial sum.
pub struct Ensemble {
    base: EstimatorSpec,
    mode: EnsembleMode,
    replicas: Vec<Box<dyn ButterflyCounter + Send>>,
    fan_out_threads: usize,
    /// Per-replica routing buffers (partition mode), reused across chunks.
    routed: Vec<Vec<StreamElement>>,
    /// `catch_unwind` + quarantine instead of fail-stop.
    supervised: bool,
    /// Per-replica quarantine state; `Some` ⇒ out of service.
    quarantined: Vec<Option<(u64, ReplicaError)>>,
    /// Injected replica faults still pending (supervision test harness).
    faults: Vec<ReplicaFault>,
    /// Retry budget applied to injected transient replica I/O faults.
    retry: RetryPolicy,
    /// Global element index — positions injected faults deterministically.
    processed: u64,
}

impl std::fmt::Debug for Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ensemble")
            .field("base", &self.base)
            .field("mode", &self.mode)
            .field("replicas", &self.replicas.len())
            .field("healthy", &self.healthy())
            .field("fan_out_threads", &self.fan_out_threads)
            .finish()
    }
}

impl Ensemble {
    /// Builds an ensemble of `replicas` copies of `base`, each constructed
    /// through the engine registry with seed `derive_seed(base.seed, i)`.
    ///
    /// Every replica gets the full per-replica budget `base.budget`; for a
    /// fixed *total* memory comparison, divide the budget before calling
    /// (`base.budget / replicas`).
    ///
    /// # Errors
    /// [`EngineError::ZeroReplicas`] if `replicas` is zero.
    pub fn new(
        base: EstimatorSpec,
        replicas: usize,
        mode: EnsembleMode,
    ) -> Result<Self, EngineError> {
        if replicas == 0 {
            return Err(EngineError::ZeroReplicas);
        }
        let replicas: Vec<_> = (0..replicas as u64)
            .map(|i| base.with_seed(derive_seed(base.seed, i)).build())
            .collect();
        let quarantined = (0..replicas.len()).map(|_| None).collect();
        Ok(Ensemble {
            base,
            mode,
            replicas,
            fan_out_threads: 1,
            routed: Vec::new(),
            supervised: false,
            quarantined,
            faults: Vec::new(),
            retry: RetryPolicy::no_delay(),
            processed: 0,
        })
    }

    /// Returns the ensemble with supervision enabled: replica work runs
    /// under `catch_unwind`, a panicking replica is quarantined instead of
    /// taking the run down, and the ensemble serves degraded over the
    /// healthy replicas.
    #[must_use]
    pub fn with_supervision(mut self) -> Self {
        self.supervised = true;
        self
    }

    /// Returns the ensemble with injected replica faults armed (implies
    /// [`with_supervision`](Ensemble::with_supervision)).  A
    /// [`ReplicaFaultKind::Panic`] fault panics the replica's worker just
    /// before it would process the fault's element; a
    /// [`ReplicaFaultKind::Io`] fault injects that many transient failures
    /// through the bounded-retry layer, quarantining the replica only when
    /// the budget is exhausted.
    #[must_use]
    pub fn with_replica_faults(mut self, faults: Vec<ReplicaFault>) -> Self {
        self.faults = faults;
        self.supervised = true;
        self
    }

    /// Returns the ensemble with a different retry budget for injected
    /// transient replica I/O faults.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Returns the ensemble with a different fan-out worker count for the
    /// chunked source driver (default 1 = inline).  Thread count never
    /// affects results, only wall time.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_fan_out_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one fan-out thread is required");
        self.fan_out_threads = threads;
        self
    }

    /// Number of replicas K.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.replicas.len()
    }

    /// The distribution mode.
    #[must_use]
    pub fn mode(&self) -> EnsembleMode {
        self.mode
    }

    /// The base spec the replicas were derived from.
    #[must_use]
    pub fn spec(&self) -> EstimatorSpec {
        self.base
    }

    /// Read access to replica `index`, for introspection and parity tests
    /// (downcast through [`ButterflyCounter::as_any`]).
    #[must_use]
    pub fn replica(&self, index: usize) -> &dyn ButterflyCounter {
        &*self.replicas[index]
    }

    /// Replicas currently in service.
    #[must_use]
    pub fn healthy(&self) -> usize {
        self.quarantined.iter().filter(|q| q.is_none()).count()
    }

    /// True when at least one replica has been quarantined.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.healthy() < self.replicas.len()
    }

    /// The typed quarantine error of replica `index`, if it is out of
    /// service.
    #[must_use]
    pub fn quarantine_error(&self, index: usize) -> Option<&ReplicaError> {
        self.quarantined[index].as_ref().map(|(_, error)| error)
    }

    /// Point-in-time health: replica counts plus one [`QuarantineRecord`]
    /// per out-of-service replica.
    #[must_use]
    pub fn health(&self) -> HealthReport {
        let quarantined: Vec<QuarantineRecord> = self
            .quarantined
            .iter()
            .enumerate()
            .filter_map(|(replica, state)| {
                state.as_ref().map(|(at_element, error)| QuarantineRecord {
                    replica,
                    at_element: *at_element,
                    reason: error.to_string(),
                })
            })
            .collect();
        HealthReport {
            total: self.replicas.len(),
            healthy: self.replicas.len() - quarantined.len(),
            quarantined,
        }
    }

    /// The current per-replica estimates of the **healthy** replicas, in
    /// replica order.  Quarantined replicas died mid-element and are never
    /// read again.
    #[must_use]
    pub fn replica_estimates(&self) -> Vec<f64> {
        self.healthy_replicas()
            .map(ButterflyCounter::estimate)
            .collect()
    }

    fn healthy_replicas(&self) -> impl Iterator<Item = &dyn ButterflyCounter> {
        self.replicas
            .iter()
            .zip(&self.quarantined)
            .filter(|(_, q)| q.is_none())
            .map(|(replica, _)| &**replica as &dyn ButterflyCounter)
    }

    /// Replica-spread statistics — replicate mode only (`None` under
    /// partition, where replicas estimate disjoint shards and their spread
    /// is not an error bar).  Degraded ensembles compute the summary over
    /// the healthy replicas only: the reduced K honestly widens the CI.
    #[must_use]
    pub fn replicate_summary(&self) -> Option<EnsembleSummary> {
        if self.mode != EnsembleMode::Replicate || self.healthy() == 0 {
            return None;
        }
        let summary = abacus_metrics::Summary::from_values(self.replica_estimates());
        let mean = summary.mean();
        let std_dev = summary.std_dev();
        let std_err = std_dev / (summary.count() as f64).sqrt();
        Some(EnsembleSummary {
            mean,
            std_dev,
            std_err,
            ci95_half_width: 1.96 * std_err,
        })
    }

    /// The shard an edge routes to in partition mode: a splitmix64 avalanche
    /// of the packed edge key, reduced mod K.  Purely a function of the
    /// edge, so a deletion always follows its insertion to the same shard.
    fn route(&self, element: StreamElement) -> usize {
        // Full-width avalanche so shard occupancy is balanced even for the
        // generators' sequential vertex ids.
        (splitmix64(element.edge.key().0) % self.replicas.len() as u64) as usize
    }

    /// Merges the healthy replicas' estimates in replica-index order
    /// (deterministic regardless of which worker drove which replica).  A
    /// fully quarantined ensemble serves 0.0 — degradation is surfaced
    /// through [`health`](Ensemble::health), never through a NaN.
    fn merged_estimate(&self) -> f64 {
        let healthy = self.healthy();
        if healthy == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .healthy_replicas()
            .map(ButterflyCounter::estimate)
            .sum();
        match self.mode {
            EnsembleMode::Replicate => sum / healthy as f64,
            EnsembleMode::Partition => sum,
        }
    }

    /// Takes (consumes) the injected fault armed for `(replica, index)`.
    fn take_fault(&mut self, replica: usize, index: u64) -> Option<ReplicaFaultKind> {
        let position = self
            .faults
            .iter()
            .position(|f| f.replica == replica && f.at == index)?;
        Some(self.faults.swap_remove(position).kind)
    }

    /// Feeds one element to replica `index` under supervision: injected
    /// faults fire first, organic panics are caught, and either outcome
    /// quarantines the replica at element `at`.
    fn feed_supervised(&mut self, index: usize, at: u64, element: StreamElement) {
        if self.quarantined[index].is_some() {
            return;
        }
        if let Some(kind) = self.take_fault(index, at) {
            match kind {
                ReplicaFaultKind::Panic => {
                    // Simulate the worker panicking mid-element, contained
                    // exactly like an organic panic below.
                    let caught = catch_unwind(|| {
                        // lint:allow(panic-policy): deliberate fault injection — caught by this catch_unwind and converted to a quarantine
                        panic!("injected replica-worker panic at element {at}");
                    })
                    .expect_err("the injected closure always panics");
                    self.quarantined[index] =
                        Some((at, ReplicaError::Panicked(panic_message(caught))));
                    return;
                }
                ReplicaFaultKind::Io { failures } => {
                    // Transient I/O faults pass through the bounded-retry
                    // layer; only an exhausted budget counts as a fault.
                    let mut remaining = failures;
                    let outcome = with_retry(&self.retry, |_| {
                        if remaining > 0 {
                            remaining -= 1;
                            return Err(PersistError::Io(std::io::Error::other(format!(
                                "injected transient replica I/O fault at element {at}"
                            ))));
                        }
                        Ok(())
                    });
                    if let Err(error) = outcome {
                        self.quarantined[index] =
                            Some((at, ReplicaError::Persist(error.to_string())));
                        return;
                    }
                    // Absorbed: fall through and process the element.
                }
            }
        }
        let replica = &mut self.replicas[index];
        if let Err(caught) = catch_unwind(AssertUnwindSafe(|| replica.process(element))) {
            self.quarantined[index] = Some((at, ReplicaError::Panicked(panic_message(caught))));
        }
    }

    /// The supervised single-element path: routes `element` and feeds every
    /// in-service target replica under `catch_unwind`.
    fn offer_supervised(&mut self, element: StreamElement) {
        let at = self.processed;
        self.processed += 1;
        match self.mode {
            EnsembleMode::Replicate => {
                for index in 0..self.replicas.len() {
                    self.feed_supervised(index, at, element);
                }
            }
            EnsembleMode::Partition => {
                let shard = self.route(element);
                self.feed_supervised(shard, at, element);
            }
        }
    }

    /// Drives one staged chunk through every replica, fanning out to worker
    /// threads when configured.  Each replica is owned by exactly one worker
    /// for the duration of the chunk and sees its elements in stream order,
    /// so results are independent of the thread count.
    fn dispatch_chunk(&mut self, staged: &[StreamElement]) {
        if staged.is_empty() {
            return;
        }
        if self.supervised {
            // Supervision needs per-element fault positions and quarantine
            // checks; the sequential path is bit-identical to the fan-out
            // (thread count never affects results), just slower.
            for &element in staged {
                self.offer_supervised(element);
            }
            return;
        }
        self.processed += staged.len() as u64;
        let workers = self.fan_out_threads.min(self.replicas.len());
        match self.mode {
            EnsembleMode::Replicate => {
                if workers <= 1 {
                    for replica in &mut self.replicas {
                        for &element in staged {
                            replica.process(element);
                        }
                    }
                } else {
                    let per_worker = self.replicas.len().div_ceil(workers);
                    std::thread::scope(|scope| {
                        for group in self.replicas.chunks_mut(per_worker) {
                            scope.spawn(move || {
                                for replica in group {
                                    for &element in staged {
                                        replica.process(element);
                                    }
                                }
                            });
                        }
                    });
                }
            }
            EnsembleMode::Partition => {
                self.routed.resize_with(self.replicas.len(), Vec::new);
                for buffer in &mut self.routed {
                    buffer.clear();
                }
                for &element in staged {
                    let shard = self.route(element);
                    self.routed[shard].push(element);
                }
                if workers <= 1 {
                    for (replica, buffer) in self.replicas.iter_mut().zip(&self.routed) {
                        for &element in buffer {
                            replica.process(element);
                        }
                    }
                } else {
                    let per_worker = self.replicas.len().div_ceil(workers);
                    let routed = &self.routed;
                    std::thread::scope(|scope| {
                        for (group_index, group) in self.replicas.chunks_mut(per_worker).enumerate()
                        {
                            scope.spawn(move || {
                                let start = group_index * per_worker;
                                for (offset, replica) in group.iter_mut().enumerate() {
                                    for &element in &routed[start + offset] {
                                        replica.process(element);
                                    }
                                }
                            });
                        }
                    });
                }
            }
        }
    }
}

impl ButterflyCounter for Ensemble {
    fn process(&mut self, element: StreamElement) {
        if self.supervised {
            self.offer_supervised(element);
            return;
        }
        self.processed += 1;
        match self.mode {
            EnsembleMode::Replicate => {
                for replica in &mut self.replicas {
                    replica.process(element);
                }
            }
            EnsembleMode::Partition => {
                let shard = self.route(element);
                self.replicas[shard].process(element);
            }
        }
    }

    fn preferred_chunk(&self) -> usize {
        // Replicas are homogeneous; honour their staging preference so a
        // PARABACUS ensemble stages whole mini-batches per pull.
        self.replicas[0].preferred_chunk()
    }

    fn process_source_chunked(
        &mut self,
        source: &mut dyn ElementSource,
        chunk: usize,
    ) -> Result<u64, StreamIoError> {
        assert!(chunk >= 1, "pull chunk must hold at least one element");
        let mut staged: Vec<StreamElement> = Vec::new();
        let mut total = 0u64;
        loop {
            staged.clear();
            while staged.len() < chunk {
                match source.next_element() {
                    Some(Ok(element)) => staged.push(element),
                    Some(Err(error)) => return Err(error),
                    None => break,
                }
            }
            total += staged.len() as u64;
            self.dispatch_chunk(&staged);
            if staged.len() < chunk {
                break; // the source is exhausted
            }
        }
        self.finish();
        Ok(total)
    }

    fn estimate(&self) -> f64 {
        self.merged_estimate()
    }

    fn finish(&mut self) -> f64 {
        for (replica, quarantine) in self.replicas.iter_mut().zip(&self.quarantined) {
            if quarantine.is_none() {
                replica.finish();
            }
        }
        self.merged_estimate()
    }

    fn memory_edges(&self) -> usize {
        self.healthy_replicas()
            .map(ButterflyCounter::memory_edges)
            .sum()
    }

    fn name(&self) -> &'static str {
        match self.mode {
            EnsembleMode::Replicate => "ENSEMBLE-replicate",
            EnsembleMode::Partition => "ENSEMBLE-partition",
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    /// One payload holding every replica's state as a length-prefixed
    /// section, so an ensemble checkpoints and recovers as a single unit —
    /// replica `i` restores to exactly the state of replica `i`, which keeps
    /// `derive_seed(base.seed, i)` streams aligned across a crash.
    fn save_state(&mut self) -> Result<Vec<u8>, PersistError> {
        if self.is_degraded() {
            // A combined snapshot of a degraded ensemble would freeze a
            // quarantined replica's broken state into the checkpoint chain.
            // Per-replica recovery is the supervisor's job (each replica
            // checkpoints in its own directory); the combined payload fails
            // closed instead.
            return Err(PersistError::Corrupt(
                "a degraded ensemble cannot take a combined snapshot; \
                 rejoin the quarantined replicas first"
                    .into(),
            ));
        }
        let mut enc = Encoder::new();
        enc.put_usize(self.replicas.len());
        enc.put_u8(match self.mode {
            EnsembleMode::Replicate => 0,
            EnsembleMode::Partition => 1,
        });
        for replica in &mut self.replicas {
            let section = replica.save_state()?;
            enc.put_bytes(&section);
        }
        Ok(enc.finish())
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), PersistError> {
        let mut dec = Decoder::new(state);
        let replicas = dec.get_usize()?;
        if replicas != self.replicas.len() {
            return Err(PersistError::Corrupt(format!(
                "ensemble snapshot holds {replicas} replicas, this ensemble has {}",
                self.replicas.len()
            )));
        }
        let mode = match dec.get_u8()? {
            0 => EnsembleMode::Replicate,
            1 => EnsembleMode::Partition,
            other => {
                return Err(PersistError::Corrupt(format!(
                    "invalid ensemble mode byte {other}"
                )))
            }
        };
        if mode != self.mode {
            return Err(PersistError::Corrupt(
                "ensemble snapshot was written under a different distribution mode".into(),
            ));
        }
        for replica in &mut self.replicas {
            let section = dec.get_bytes()?;
            replica.restore_state(section)?;
        }
        dec.expect_end()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EstimatorKind;
    use abacus_graph::Edge;
    use abacus_stream::generators::random::uniform_bipartite;
    use abacus_stream::{inject_deletions_fast, DeletionConfig, SliceSource};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn workload(edges: usize) -> Vec<StreamElement> {
        let base = uniform_bipartite(60, 60, edges, &mut StdRng::seed_from_u64(5));
        inject_deletions_fast(
            &base,
            DeletionConfig::new(0.2),
            &mut StdRng::seed_from_u64(6),
        )
    }

    #[test]
    fn mode_names_parse_and_display() {
        assert_eq!(
            EnsembleMode::parse("replicate").unwrap(),
            EnsembleMode::Replicate
        );
        assert_eq!(
            EnsembleMode::parse("PARTITION").unwrap(),
            EnsembleMode::Partition
        );
        assert_eq!(
            EnsembleMode::parse("shard").unwrap_err(),
            EnsembleMode::EXPECTED_NAMES
        );
        assert_eq!(EnsembleMode::Replicate.to_string(), "replicate");
        assert_eq!(EnsembleMode::default(), EnsembleMode::Replicate);
    }

    #[test]
    fn replicate_estimate_is_the_mean_of_the_replicas() {
        let stream = workload(800);
        let mut ensemble = Ensemble::new(
            EstimatorSpec::abacus(128).with_seed(3),
            4,
            EnsembleMode::Replicate,
        )
        .unwrap();
        ensemble.process_stream(&stream);
        let estimates = ensemble.replica_estimates();
        let mean = estimates.iter().sum::<f64>() / estimates.len() as f64;
        assert_eq!(ensemble.estimate().to_bits(), mean.to_bits());
        let summary = ensemble.replicate_summary().unwrap();
        assert_eq!(summary.mean.to_bits(), mean.to_bits());
        assert!(summary.std_dev >= 0.0);
        assert!((summary.ci95_half_width - 1.96 * summary.std_err).abs() < 1e-12);
        // Replicas drew different seeds, so (with a sub-covering budget)
        // their trajectories differ.
        assert!(
            estimates.windows(2).any(|w| w[0] != w[1]),
            "replicas appear seed-correlated: {estimates:?}"
        );
    }

    #[test]
    fn partition_routes_every_element_to_exactly_one_shard() {
        let stream = workload(600);
        let mut ensemble =
            Ensemble::new(EstimatorSpec::exact(), 3, EnsembleMode::Partition).unwrap();
        ensemble.process_stream(&stream);
        // Shards partition the stream: element counts over the exact
        // replicas sum to the stream length.
        let processed: u64 = (0..3)
            .map(|i| {
                ensemble
                    .replica(i)
                    .as_any()
                    .unwrap()
                    .downcast_ref::<crate::ExactCounter>()
                    .unwrap()
                    .stats()
                    .elements
            })
            .sum();
        assert_eq!(processed, stream.len() as u64);
        // And the ensemble estimate is the sum of the shard counts.
        let sum: f64 = ensemble.replica_estimates().iter().sum();
        assert_eq!(ensemble.estimate().to_bits(), sum.to_bits());
        assert!(ensemble.replicate_summary().is_none());
    }

    #[test]
    fn partition_deletions_follow_their_insertions() {
        // Insert then delete the same edge: both must land on one shard, so
        // every shard's final graph is empty.
        let mut ensemble =
            Ensemble::new(EstimatorSpec::exact(), 4, EnsembleMode::Partition).unwrap();
        let mut stream = Vec::new();
        for l in 0..20u32 {
            for r in 0..5u32 {
                stream.push(StreamElement::insert(Edge::new(l, r)));
            }
        }
        for element in &stream.clone() {
            stream.push(StreamElement::delete(element.edge));
        }
        ensemble.process_stream(&stream);
        assert_eq!(ensemble.estimate(), 0.0);
        assert_eq!(ensemble.memory_edges(), 0);
    }

    #[test]
    fn fan_out_threads_do_not_change_results() {
        let stream = workload(900);
        for mode in [EnsembleMode::Replicate, EnsembleMode::Partition] {
            let fingerprint = |threads: usize| {
                let mut ensemble = Ensemble::new(EstimatorSpec::abacus(100).with_seed(11), 3, mode)
                    .unwrap()
                    .with_fan_out_threads(threads);
                ensemble
                    .process_source_chunked(&mut SliceSource::new(&stream), 64)
                    .unwrap();
                (
                    ensemble.estimate().to_bits(),
                    ensemble
                        .replica_estimates()
                        .iter()
                        .map(|e| e.to_bits())
                        .collect::<Vec<_>>(),
                    ensemble.memory_edges(),
                )
            };
            let single = fingerprint(1);
            for threads in [2usize, 3, 8] {
                assert_eq!(fingerprint(threads), single, "{mode} threads {threads}");
            }
        }
    }

    #[test]
    fn ensemble_drives_parabacus_replicas_with_their_preferred_chunk() {
        let ensemble = Ensemble::new(
            EstimatorSpec::parabacus(64)
                .with_batch_size(77)
                .with_threads(1),
            2,
            EnsembleMode::Replicate,
        )
        .unwrap();
        assert_eq!(ensemble.preferred_chunk(), 77);
        assert_eq!(ensemble.spec().kind, EstimatorKind::ParAbacus);
        assert_eq!(ensemble.name(), "ENSEMBLE-replicate");
    }

    #[test]
    fn zero_replicas_is_a_typed_error() {
        assert_eq!(
            Ensemble::new(EstimatorSpec::abacus(64), 0, EnsembleMode::Replicate).unwrap_err(),
            EngineError::ZeroReplicas
        );
    }

    #[test]
    fn injected_panic_quarantines_the_replica_and_serving_degrades() {
        let stream = workload(600);
        let fault_at = 250u64;
        let mut ensemble = Ensemble::new(
            EstimatorSpec::abacus(128).with_seed(3),
            3,
            EnsembleMode::Replicate,
        )
        .unwrap()
        .with_replica_faults(vec![ReplicaFault {
            replica: 1,
            at: fault_at,
            kind: ReplicaFaultKind::Panic,
        }]);
        ensemble.process_stream(&stream);
        assert!(ensemble.is_degraded());
        assert_eq!(ensemble.healthy(), 2);
        let health = ensemble.health();
        assert_eq!(health.total, 3);
        assert_eq!(health.healthy, 2);
        assert_eq!(health.quarantined.len(), 1);
        assert_eq!(health.quarantined[0].replica, 1);
        assert_eq!(health.quarantined[0].at_element, fault_at);
        assert!(matches!(
            ensemble.quarantine_error(1),
            Some(ReplicaError::Panicked(_))
        ));
        // Degraded serving: mean and summary over the two healthy replicas.
        let estimates = ensemble.replica_estimates();
        assert_eq!(estimates.len(), 2);
        let mean = estimates.iter().sum::<f64>() / 2.0;
        assert_eq!(ensemble.estimate().to_bits(), mean.to_bits());
        let summary = ensemble.replicate_summary().unwrap();
        assert_eq!(summary.mean.to_bits(), mean.to_bits());
        // The healthy replicas are bit-identical to the same replicas of an
        // ensemble that never saw a fault.
        let mut reference = Ensemble::new(
            EstimatorSpec::abacus(128).with_seed(3),
            3,
            EnsembleMode::Replicate,
        )
        .unwrap();
        reference.process_stream(&stream);
        for index in [0usize, 2] {
            assert_eq!(
                ensemble.replica(index).estimate().to_bits(),
                reference.replica(index).estimate().to_bits(),
                "healthy replica {index} diverged"
            );
        }
        // And a combined snapshot of the degraded ensemble fails closed.
        assert!(matches!(
            ensemble.save_state(),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn transient_io_faults_within_budget_are_absorbed() {
        let stream = workload(500);
        let run = |failures: u32| {
            let mut ensemble = Ensemble::new(
                EstimatorSpec::abacus(100).with_seed(7),
                2,
                EnsembleMode::Replicate,
            )
            .unwrap()
            .with_replica_faults(vec![ReplicaFault {
                replica: 0,
                at: 100,
                kind: ReplicaFaultKind::Io { failures },
            }]);
            ensemble.process_stream(&stream);
            ensemble
        };
        // Two transient failures fit the 3-attempt budget: absorbed, and the
        // run is bit-identical to a fault-free one.
        let absorbed = run(2);
        assert!(!absorbed.is_degraded());
        let clean = run(0);
        assert_eq!(absorbed.estimate().to_bits(), clean.estimate().to_bits());
        // Five failures exhaust the budget: quarantined with a typed
        // persistence error.
        let exhausted = run(5);
        assert!(exhausted.is_degraded());
        assert!(matches!(
            exhausted.quarantine_error(0),
            Some(ReplicaError::Persist(_))
        ));
    }

    #[test]
    fn partition_mode_quarantine_drops_only_the_failed_shard() {
        let stream = workload(700);
        // Arm the panic on the first element that actually routes to shard 2
        // (routing is a pure function of the edge, mirrored here).
        let fault_at = stream
            .iter()
            .position(|e| splitmix64(e.edge.key().0) % 3 == 2)
            .expect("some element routes to shard 2") as u64;
        let mut ensemble = Ensemble::new(EstimatorSpec::exact(), 3, EnsembleMode::Partition)
            .unwrap()
            .with_replica_faults(vec![ReplicaFault {
                replica: 2,
                at: fault_at,
                kind: ReplicaFaultKind::Panic,
            }]);
        ensemble.process_stream(&stream);
        assert!(ensemble.is_degraded());
        assert_eq!(ensemble.health().quarantined[0].at_element, fault_at);
        // The healthy shards match a fault-free reference bit-for-bit, and
        // the degraded estimate is their partial sum.
        let mut reference =
            Ensemble::new(EstimatorSpec::exact(), 3, EnsembleMode::Partition).unwrap();
        reference.process_stream(&stream);
        for index in [0usize, 1] {
            assert_eq!(
                ensemble.replica(index).estimate().to_bits(),
                reference.replica(index).estimate().to_bits()
            );
        }
        let partial: f64 = (0..2).map(|i| reference.replica(i).estimate()).sum();
        assert_eq!(ensemble.estimate().to_bits(), partial.to_bits());
    }
}
