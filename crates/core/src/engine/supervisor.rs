//! [`EnsembleSupervisor`]: durable, fault-tolerant ensemble serving with
//! quarantine, degraded operation, and bit-exact catch-up rejoin.
//!
//! The supervisor composes two things PR 7 already shipped — per-estimator
//! [`Checkpointer`]s and the `ABWL1` WAL — into the ROADMAP's promised
//! topology: *replicas checkpoint independently, a degraded ensemble keeps
//! serving*.
//!
//! # Layout
//!
//! ```text
//! <dir>/
//!   MANIFEST                 top-level ensemble manifest (spec, K, mode)
//!   wal-...abwl              the ensemble log: every stream element, in order
//!   COMMITTED                ensemble watermark (elements durably sealed)
//!   replica-0/               replica 0's own Checkpointer directory
//!     MANIFEST  snap-...  wal-...  COMMITTED
//!   replica-1/ ...
//! ```
//!
//! Each replica runs its own [`Checkpointer`] (derived seed, same cadence)
//! in its own subdirectory; the supervisor additionally appends every stream
//! element to an **ensemble-level WAL** before fan-out.  That log is the
//! rejoin substrate: a replica that died at element *n* can be rebuilt from
//! its newest snapshot and caught up element-by-element to the ensemble's
//! position, because the ensemble log covers the suffix the replica missed.
//! The ensemble log is deliberately never pruned — in partition mode a
//! quarantined shard's catch-up must re-scan from the beginning to count its
//! routed elements, and an unpruned log keeps rejoin possible at arbitrary
//! lag.  (Disk cost: the full stream in ~2 bytes/element varint encoding.)
//!
//! # Fault containment
//!
//! Replica work runs under `catch_unwind`; persistence errors pass through
//! the bounded-retry layer ([`RetryPolicy`]) first.  A replica that panics
//! or exhausts its retry budget is **quarantined**: its checkpointer is
//! dropped (crash-equivalent — its directory stays recoverable), the fault
//! is recorded as a typed [`ReplicaError`], and the remaining replicas keep
//! ingesting and serving.  Nothing about a quarantined replica is ever read
//! again until it rejoins.
//!
//! # Bit-exact rejoin
//!
//! [`rejoin`](EnsembleSupervisor::rejoin) resumes the quarantined replica's
//! own checkpoint directory (newest valid snapshot + its own WAL replay,
//! re-performing cadence checkpoints — the PR-7 bit-exactness discipline)
//! and then offers it the missed suffix from the ensemble log through the
//! same `Checkpointer::offer` path the healthy replicas used.  Replay and
//! live processing are therefore *the same code path*, so a
//! failed-recovered-rejoined replica is bit-identical (estimate bits,
//! `memory_edges`, serialized state) to a replica that never failed — the
//! property `tests/fault_tolerance.rs` asserts across fault points,
//! estimator kinds, and both ensemble modes.

use crate::counter::ButterflyCounter;
use crate::engine::checkpoint::{Checkpointer, RunManifest};
use crate::engine::error::panic_message;
use crate::engine::{EnsembleMode, EnsembleSummary, ReplicaError};
use abacus_graph::persist::PersistError;
use abacus_metrics::{HealthReport, QuarantineRecord};
use abacus_sampling::{derive_seed, splitmix64};
use abacus_stream::fault::{ReplicaFault, ReplicaFaultKind};
use abacus_stream::persist::{
    read_watermark, replay_wal, seal_tail, with_retry, write_watermark, write_watermark_with_retry,
    RetryPolicy, WalWriter,
};
use abacus_stream::StreamElement;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// One replica slot: in service (`checkpointer` present) or quarantined.
struct ReplicaSlot {
    checkpointer: Option<Checkpointer>,
    quarantine: Option<(u64, ReplicaError)>,
}

/// What a rejoin (or resume-time catch-up) did for one replica.
#[derive(Debug)]
pub struct ReplicaRecovery {
    /// The replica index.
    pub replica: usize,
    /// Element position of the snapshot the replica restored from.
    pub snapshot_elements: u64,
    /// Elements replayed from the replica's own WAL.
    pub replayed: u64,
    /// Elements caught up from the ensemble log on top of the replica's own
    /// durable state.
    pub caught_up: u64,
}

/// What [`EnsembleSupervisor::resume`] reconstructed.
#[derive(Debug)]
pub struct SupervisorRecovery {
    /// The recovered supervisor, all replicas healthy and caught up to the
    /// end of the durable ensemble log.
    pub supervisor: EnsembleSupervisor,
    /// Per-replica recovery detail, in replica order.
    pub replicas: Vec<ReplicaRecovery>,
    /// Whether a torn tail was dropped from the ensemble log.
    pub dropped_torn_tail: bool,
    /// Whether the ensemble watermark was missing/corrupt and was rebuilt
    /// from the durable log.
    pub watermark_rebuilt: bool,
}

/// Drives K per-replica [`Checkpointer`]s plus an ensemble-level WAL, with
/// `catch_unwind` fault containment, quarantine, degraded serving, and
/// WAL catch-up rejoin.  See the module docs for the full lifecycle.
pub struct EnsembleSupervisor {
    dir: PathBuf,
    manifest: RunManifest,
    mode: EnsembleMode,
    slots: Vec<ReplicaSlot>,
    offered: u64,
    faults: Vec<ReplicaFault>,
    retry: RetryPolicy,
    wal: Option<WalWriter>,
}

impl std::fmt::Debug for EnsembleSupervisor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnsembleSupervisor")
            .field("dir", &self.dir)
            .field("mode", &self.mode)
            .field("replicas", &self.slots.len())
            .field("healthy", &self.healthy())
            .field("offered", &self.offered)
            .finish()
    }
}

impl EnsembleSupervisor {
    /// Initializes a supervised ensemble directory: the top-level manifest
    /// and ensemble WAL, plus one [`Checkpointer`] per replica under
    /// `replica-{i}/`, each with seed `derive_seed(base.seed, i)` and the
    /// manifest's checkpoint cadence.
    ///
    /// # Errors
    /// [`PersistError::Corrupt`] when `manifest.ensemble` is `None`, or any
    /// [`PersistError`] from the filesystem.
    pub fn create(dir: impl Into<PathBuf>, manifest: RunManifest) -> Result<Self, PersistError> {
        let dir = dir.into();
        let Some((replicas, mode)) = manifest.ensemble else {
            return Err(PersistError::Corrupt(
                "the supervisor needs an ensemble manifest (replicas + mode)".into(),
            ));
        };
        if !manifest.views.is_empty() {
            return Err(PersistError::Corrupt(
                "supervised ensembles do not take circuit views".into(),
            ));
        }
        manifest.write(&dir)?;
        let wal = WalWriter::create(&dir, 0)?;
        write_watermark(&dir, 0)?;
        let mut slots = Vec::with_capacity(replicas);
        for index in 0..replicas {
            let spec = manifest
                .spec
                .with_seed(derive_seed(manifest.spec.seed, index as u64));
            let replica_manifest = RunManifest::new(spec, manifest.checkpoint_every);
            let checkpointer = Checkpointer::create(replica_dir(&dir, index), replica_manifest)?;
            slots.push(ReplicaSlot {
                checkpointer: Some(checkpointer),
                quarantine: None,
            });
        }
        Ok(EnsembleSupervisor {
            dir,
            manifest,
            mode,
            slots,
            offered: 0,
            faults: Vec::new(),
            retry: RetryPolicy::default(),
            wal: Some(wal),
        })
    }

    /// Returns the supervisor with injected replica faults armed
    /// ([`ReplicaFaultKind::Panic`] panics the replica's worker before it
    /// processes the fault's element; [`ReplicaFaultKind::Io`] injects that
    /// many transient persistence failures through the retry layer).
    #[must_use]
    pub fn with_replica_faults(mut self, faults: Vec<ReplicaFault>) -> Self {
        self.faults = faults;
        self
    }

    /// Returns the supervisor with a different persistence retry budget.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Appends `element` to the ensemble log, fans it out to every
    /// in-service replica that the mode routes it to (under `catch_unwind`
    /// plus bounded retry), and commits the ensemble watermark at the
    /// checkpoint cadence.  A replica fault quarantines that replica; the
    /// call still succeeds.
    ///
    /// # Errors
    /// [`PersistError`] only for *ensemble-level* failures (the ensemble
    /// log or watermark) that survive bounded retry.
    pub fn offer(&mut self, element: StreamElement) -> Result<(), PersistError> {
        self.wal
            .as_mut()
            .ok_or(PersistError::Invariant(
                "the ensemble WAL is open until finish()",
            ))?
            .append_with_retry(element, &self.retry)?;
        let at = self.offered;
        self.offered += 1;
        match self.mode {
            EnsembleMode::Replicate => {
                for index in 0..self.slots.len() {
                    self.feed_replica(index, at, element);
                }
            }
            EnsembleMode::Partition => {
                let shard = self.route(element);
                self.feed_replica(shard, at, element);
            }
        }
        let every = self.manifest.checkpoint_every;
        if every > 0 && self.offered.is_multiple_of(every) {
            self.commit()?;
        }
        Ok(())
    }

    /// Feeds one element to replica `index`, containing faults.
    fn feed_replica(&mut self, index: usize, at: u64, element: StreamElement) {
        if self.slots[index].quarantine.is_some() {
            return;
        }
        let injected = self.take_fault(index, at);
        let retry = self.retry;
        let slot = &mut self.slots[index];
        let Some(checkpointer) = slot.checkpointer.as_mut() else {
            // An in-service slot always holds its checkpointer; a missing one
            // is treated as a crashed replica instead of tearing the
            // supervisor down, so the ensemble keeps serving.
            slot.quarantine = Some((
                at,
                ReplicaError::Persist(
                    PersistError::Invariant("an in-service slot holds its checkpointer")
                        .to_string(),
                ),
            ));
            return;
        };
        let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<(), PersistError> {
            match injected {
                Some(ReplicaFaultKind::Panic) => {
                    // lint:allow(panic-policy): deliberate fault injection — the panic is caught by the surrounding catch_unwind and becomes a quarantine
                    panic!("injected replica-worker panic at element {at}");
                }
                Some(ReplicaFaultKind::Io { failures }) => {
                    let mut remaining = failures;
                    with_retry(&retry, |_| {
                        if remaining > 0 {
                            remaining -= 1;
                            return Err(PersistError::Io(std::io::Error::other(format!(
                                "injected transient replica I/O fault at element {at}"
                            ))));
                        }
                        checkpointer.offer(element)
                    })
                }
                None => checkpointer.offer(element),
            }
        }));
        let error = match outcome {
            Ok(Ok(())) => return,
            Ok(Err(persist)) => ReplicaError::Persist(persist.to_string()),
            Err(caught) => ReplicaError::Panicked(panic_message(caught)),
        };
        // Quarantine: drop the checkpointer (crash-equivalent — its
        // directory remains recoverable) and record the typed fault.  The
        // element at `at` was NOT applied to this replica, but the ensemble
        // log covers it, so catch-up will deliver it on rejoin.
        let slot = &mut self.slots[index];
        slot.checkpointer = None;
        slot.quarantine = Some((at, error));
    }

    /// Takes (consumes) the injected fault armed for `(replica, index)`.
    fn take_fault(&mut self, replica: usize, at: u64) -> Option<ReplicaFaultKind> {
        let position = self
            .faults
            .iter()
            .position(|f| f.replica == replica && f.at == at)?;
        Some(self.faults.swap_remove(position).kind)
    }

    /// Seals + rotates the ensemble log and advances the ensemble watermark
    /// to the current position (with bounded retry on the rename).
    fn commit(&mut self) -> Result<u64, PersistError> {
        let wal = self.wal.take().ok_or(PersistError::Invariant(
            "the ensemble WAL is open until finish()",
        ))?;
        self.wal = Some(wal.rotate()?);
        write_watermark_with_retry(&self.dir, self.offered, &self.retry)?;
        Ok(self.offered)
    }

    /// Rebuilds quarantined replica `index` from its own checkpoint
    /// directory, catches it up from the ensemble log to the supervisor's
    /// current position, and re-admits it.
    ///
    /// # Errors
    /// [`PersistError::Corrupt`] when the replica is not quarantined, or
    /// any [`PersistError`] from recovery/catch-up.
    pub fn rejoin(&mut self, index: usize) -> Result<ReplicaRecovery, PersistError> {
        if self.slots[index].quarantine.is_none() {
            return Err(PersistError::Corrupt(format!(
                "replica {index} is not quarantined"
            )));
        }
        // Seal the open ensemble segment so catch-up can read the whole log,
        // and advance the watermark — this is a commit point.
        self.commit()?;
        let recovery = Checkpointer::resume(replica_dir(&self.dir, index))?;
        let mut checkpointer = recovery.checkpointer;
        let caught_up = self.catch_up(index, &mut checkpointer)?;
        let slot = &mut self.slots[index];
        slot.checkpointer = Some(checkpointer);
        slot.quarantine = None;
        Ok(ReplicaRecovery {
            replica: index,
            snapshot_elements: recovery.snapshot_elements,
            replayed: recovery.replayed,
            caught_up,
        })
    }

    /// Offers replica `index` every element of the ensemble log it has not
    /// yet seen, through the same `Checkpointer::offer` path live traffic
    /// uses (cadence checkpoints re-performed ⇒ bit-exact alignment).
    fn catch_up(&self, index: usize, checkpointer: &mut Checkpointer) -> Result<u64, PersistError> {
        let already = checkpointer.elements();
        let mut caught_up = 0u64;
        match self.mode {
            EnsembleMode::Replicate => {
                // Replica position == global position: replay the suffix.
                let replay = replay_wal(&self.dir, already)?;
                for &element in &replay.elements {
                    checkpointer.offer(element)?;
                    caught_up += 1;
                }
            }
            EnsembleMode::Partition => {
                // The replica's local count is not a global position: scan
                // the full log, keep this shard's elements, skip the prefix
                // the replica already holds.
                let replay = replay_wal(&self.dir, 0)?;
                let mut seen = 0u64;
                for &element in &replay.elements {
                    if self.route(element) != index {
                        continue;
                    }
                    seen += 1;
                    if seen <= already {
                        continue;
                    }
                    checkpointer.offer(element)?;
                    caught_up += 1;
                }
            }
        }
        Ok(caught_up)
    }

    /// Recovers a supervised ensemble directory after a crash (or after a
    /// degraded run completed): seals the ensemble log, resumes every
    /// replica from its own directory, catches each up to the end of the
    /// durable log, and re-opens the ensemble WAL.  All replicas come back
    /// healthy.
    ///
    /// A missing or corrupt ensemble watermark is rebuilt from the durable
    /// log (flagged, never silently double-replayed); a watermark *ahead*
    /// of the durable log is a [`PersistError::Gap`].
    ///
    /// # Errors
    /// Any [`PersistError`] from the manifest, the ensemble log chain, or a
    /// replica's recovery.
    pub fn resume(dir: impl Into<PathBuf>) -> Result<SupervisorRecovery, PersistError> {
        let dir = dir.into();
        let manifest = RunManifest::read(&dir)?;
        let Some((replicas, mode)) = manifest.ensemble else {
            return Err(PersistError::Corrupt(
                "this checkpoint directory does not describe a supervised ensemble".into(),
            ));
        };
        let (watermark, mut watermark_rebuilt) = match read_watermark(&dir) {
            Ok(Some(committed)) => (Some(committed), false),
            Ok(None) => (None, true),
            Err(PersistError::Io(error)) => return Err(PersistError::Io(error)),
            Err(_) => (None, true), // corrupt: rebuild from the durable log
        };
        let dropped_torn_tail = seal_tail(&dir)?;
        let full = replay_wal(&dir, 0)?;
        let durable_end = full.next_seq;
        if let Some(committed) = watermark {
            if committed > durable_end {
                // The watermark claims more than the log holds: elements are
                // irrecoverably missing — fail closed rather than serve a
                // silently shortened stream.
                return Err(PersistError::Gap {
                    expected: committed,
                    found: durable_end,
                });
            }
            if committed < durable_end {
                watermark_rebuilt = true; // heal the stale watermark below
            }
        }

        let mut supervisor = EnsembleSupervisor {
            dir,
            manifest,
            mode,
            slots: Vec::with_capacity(replicas),
            offered: durable_end,
            faults: Vec::new(),
            retry: RetryPolicy::default(),
            wal: None,
        };
        let mut recoveries = Vec::with_capacity(replicas);
        for index in 0..replicas {
            let recovery = Checkpointer::resume(replica_dir(&supervisor.dir, index))?;
            let mut checkpointer = recovery.checkpointer;
            let caught_up = supervisor.catch_up(index, &mut checkpointer)?;
            supervisor.slots.push(ReplicaSlot {
                checkpointer: Some(checkpointer),
                quarantine: None,
            });
            recoveries.push(ReplicaRecovery {
                replica: index,
                snapshot_elements: recovery.snapshot_elements,
                replayed: recovery.replayed,
                caught_up,
            });
        }
        if watermark_rebuilt {
            write_watermark(&supervisor.dir, durable_end)?;
        }
        supervisor.wal = Some(WalWriter::create(&supervisor.dir, durable_end)?);
        Ok(SupervisorRecovery {
            supervisor,
            replicas: recoveries,
            dropped_torn_tail: dropped_torn_tail || full.dropped_torn_tail,
            watermark_rebuilt,
        })
    }

    /// Finalizes the run: finishes every healthy replica's checkpointer
    /// (draining buffered work + final per-replica checkpoint), seals the
    /// ensemble log, advances the ensemble watermark to the stream end, and
    /// returns the merged (possibly degraded) estimate.  The supervisor can
    /// not ingest after `finish`; quarantined replicas rejoin through
    /// [`resume`](EnsembleSupervisor::resume).
    ///
    /// # Errors
    /// Any [`PersistError`] from a healthy replica's final checkpoint or
    /// the ensemble log.
    pub fn finish(&mut self) -> Result<f64, PersistError> {
        for slot in &mut self.slots {
            if let Some(checkpointer) = slot.checkpointer.as_mut() {
                checkpointer.finish()?;
            }
        }
        if let Some(wal) = self.wal.take() {
            wal.seal()?;
        }
        write_watermark_with_retry(&self.dir, self.offered, &self.retry)?;
        Ok(self.estimate())
    }

    /// The shard an edge routes to in partition mode — identical to
    /// `Ensemble`'s routing (a pure function of the edge and K).  K comes
    /// from the manifest, not `slots.len()`, because resume-time catch-up
    /// routes while the slot vector is still being filled.
    fn route(&self, element: StreamElement) -> usize {
        let shards = self
            .manifest
            .ensemble
            .map_or(self.slots.len(), |(replicas, _)| replicas);
        (splitmix64(element.edge.key().0) % shards as u64) as usize
    }

    /// The merged estimate over the healthy replicas (mean under replicate,
    /// sum under partition; 0.0 when everything is quarantined).
    #[must_use]
    pub fn estimate(&self) -> f64 {
        let estimates = self.replica_estimates();
        if estimates.is_empty() {
            return 0.0;
        }
        let sum: f64 = estimates.iter().map(|(_, e)| e).sum();
        match self.mode {
            EnsembleMode::Replicate => sum / estimates.len() as f64,
            EnsembleMode::Partition => sum,
        }
    }

    /// `(replica index, estimate)` for every healthy replica, in order.
    #[must_use]
    pub fn replica_estimates(&self) -> Vec<(usize, f64)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| {
                slot.checkpointer
                    .as_ref()
                    .map(|c| (index, c.estimator().estimate()))
            })
            .collect()
    }

    /// Replica-spread statistics over the healthy replicas — replicate mode
    /// only.  Under degradation the reduced K honestly widens the CI.
    #[must_use]
    pub fn replicate_summary(&self) -> Option<EnsembleSummary> {
        if self.mode != EnsembleMode::Replicate {
            return None;
        }
        let estimates: Vec<f64> = self
            .replica_estimates()
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        if estimates.is_empty() {
            return None;
        }
        let summary = abacus_metrics::Summary::from_values(estimates);
        let mean = summary.mean();
        let std_dev = summary.std_dev();
        let std_err = std_dev / (summary.count() as f64).sqrt();
        Some(EnsembleSummary {
            mean,
            std_dev,
            std_err,
            ci95_half_width: 1.96 * std_err,
        })
    }

    /// Total sampled edges across the healthy replicas.
    #[must_use]
    pub fn memory_edges(&self) -> usize {
        self.slots
            .iter()
            .filter_map(|slot| slot.checkpointer.as_ref())
            .map(|c| c.estimator().memory_edges())
            .sum()
    }

    /// Read access to replica `index`'s live estimator (`None` while
    /// quarantined).
    #[must_use]
    pub fn replica(&self, index: usize) -> Option<&dyn ButterflyCounter> {
        self.slots[index]
            .checkpointer
            .as_ref()
            .map(Checkpointer::estimator)
    }

    /// Mutable access to replica `index`'s checkpointer (`None` while
    /// quarantined) — for parity tests that serialize replica state.
    pub fn replica_checkpointer_mut(&mut self, index: usize) -> Option<&mut Checkpointer> {
        self.slots[index].checkpointer.as_mut()
    }

    /// Replicas currently in service.
    #[must_use]
    pub fn healthy(&self) -> usize {
        self.slots.iter().filter(|s| s.quarantine.is_none()).count()
    }

    /// True when at least one replica is quarantined.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        self.healthy() < self.slots.len()
    }

    /// Point-in-time health: counts plus per-replica quarantine records.
    #[must_use]
    pub fn health(&self) -> HealthReport {
        let quarantined: Vec<QuarantineRecord> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(replica, slot)| {
                slot.quarantine
                    .as_ref()
                    .map(|(at_element, error)| QuarantineRecord {
                        replica,
                        at_element: *at_element,
                        reason: error.to_string(),
                    })
            })
            .collect();
        HealthReport {
            total: self.slots.len(),
            healthy: self.slots.len() - quarantined.len(),
            quarantined,
        }
    }

    /// Total replica count K.
    #[must_use]
    pub fn replicas(&self) -> usize {
        self.slots.len()
    }

    /// The distribution mode.
    #[must_use]
    pub fn mode(&self) -> EnsembleMode {
        self.mode
    }

    /// Elements offered so far.
    #[must_use]
    pub fn offered(&self) -> u64 {
        self.offered
    }

    /// The supervised checkpoint directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The top-level manifest.
    #[must_use]
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }
}

/// The checkpoint subdirectory of replica `index`.
#[must_use]
pub fn replica_dir(dir: &Path, index: usize) -> PathBuf {
    dir.join(format!("replica-{index}"))
}

/// Whether `dir` holds a *supervised* ensemble layout (top-level ensemble
/// manifest plus per-replica subdirectories), as opposed to a combined
/// single-checkpointer ensemble run.
#[must_use]
pub fn is_supervised_dir(dir: &Path) -> bool {
    RunManifest::read(dir).is_ok_and(|m| m.ensemble.is_some()) && replica_dir(dir, 0).is_dir()
}
