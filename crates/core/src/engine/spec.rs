//! [`EstimatorSpec`]: the serde-able description of one estimator, and the
//! registry that builds it.

use crate::config::{AbacusConfig, ParAbacusConfig, SnapshotMode};
use crate::counter::ButterflyCounter;
use crate::{Abacus, ExactCounter, LocalAbacus, ParAbacus};
use abacus_baselines::{Cas, CasConfig, Fleet, FleetConfig};
use abacus_graph::intersect::KernelTuning;
use serde::{Deserialize, Serialize};

/// Every estimator the registry can build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EstimatorKind {
    /// ABACUS — sequential, fully dynamic (the paper's Algorithm 1).
    Abacus,
    /// PARABACUS — mini-batch parallel, fully dynamic.
    ParAbacus,
    /// ABACUS with per-vertex (local) butterfly attribution.
    Local,
    /// FLEET3 — insert-only baseline (CIKM 2019).
    Fleet,
    /// CAS — insert-only baseline (TKDE 2022).
    Cas,
    /// The exact streaming oracle (unbounded memory, ground truth).
    Exact,
}

impl EstimatorKind {
    /// Every kind, in canonical presentation order.
    pub const ALL: [EstimatorKind; 6] = [
        EstimatorKind::Abacus,
        EstimatorKind::ParAbacus,
        EstimatorKind::Local,
        EstimatorKind::Fleet,
        EstimatorKind::Cas,
        EstimatorKind::Exact,
    ];

    /// The canonical choice list, phrased for error messages — the *single*
    /// source of truth shared by the CLI's `--algorithm` option and the
    /// bench harness, so the two can never drift apart again.
    pub const EXPECTED_NAMES: &'static str = "abacus, parabacus, local, fleet, cas, or exact";

    /// The canonical (lower-case) name, accepted by [`EstimatorKind::parse`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EstimatorKind::Abacus => "abacus",
            EstimatorKind::ParAbacus => "parabacus",
            EstimatorKind::Local => "local",
            EstimatorKind::Fleet => "fleet",
            EstimatorKind::Cas => "cas",
            EstimatorKind::Exact => "exact",
        }
    }

    /// Display label for result tables (matches each estimator's
    /// [`ButterflyCounter::name`]).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EstimatorKind::Abacus => "ABACUS",
            EstimatorKind::ParAbacus => "PARABACUS",
            EstimatorKind::Local => "ABACUS-local",
            EstimatorKind::Fleet => "FLEET",
            EstimatorKind::Cas => "CAS",
            EstimatorKind::Exact => "EXACT",
        }
    }

    /// Parses a kind from its canonical name, case-insensitively.
    ///
    /// # Errors
    ///
    /// Returns the list of valid choices ([`EstimatorKind::EXPECTED_NAMES`])
    /// for anything unrecognised, so front ends can surface it verbatim.
    pub fn parse(raw: &str) -> Result<Self, &'static str> {
        let lower = raw.to_ascii_lowercase();
        EstimatorKind::ALL
            .into_iter()
            .find(|kind| kind.name() == lower)
            .ok_or(Self::EXPECTED_NAMES)
    }
}

impl std::str::FromStr for EstimatorKind {
    type Err = &'static str;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        EstimatorKind::parse(raw)
    }
}

impl std::fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A complete, buildable description of one estimator.
///
/// The spec is the union of every constructor knob in the workspace; kinds
/// simply ignore the fields that do not apply to them (EXACT ignores
/// everything but the kind, FLEET/CAS use budget and seed only).  That makes
/// specs freely interchangeable — an experiment sweep can swap the kind
/// while holding every other knob fixed.
///
/// ```
/// use abacus_core::engine::{EstimatorKind, EstimatorSpec};
///
/// let spec = EstimatorSpec::parabacus(3_000)
///     .with_seed(7)
///     .with_batch_size(500)
///     .with_threads(2);
/// let mut counter = spec.build();
/// assert_eq!(counter.name(), "PARABACUS");
/// assert_eq!(spec.kind, EstimatorKind::ParAbacus);
/// assert_eq!(counter.estimate(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimatorSpec {
    /// Which estimator to build.
    pub kind: EstimatorKind,
    /// Memory budget `k` in edges (≥ 2; ignored by EXACT).
    pub budget: usize,
    /// Seed of the estimator's private RNG.
    pub seed: u64,
    /// PARABACUS mini-batch size `M`.
    pub batch_size: usize,
    /// PARABACUS worker threads `p`.
    pub threads: usize,
    /// PARABACUS pipeline depth (1 = the paper's alternating schedule).
    pub pipeline_depth: usize,
    /// Frozen-CSR counting snapshot mode (ABACUS/PARABACUS).
    pub snapshot: SnapshotMode,
    /// Adaptive intersection-kernel cutovers (ABACUS/PARABACUS).
    pub kernel: KernelTuning,
}

impl EstimatorSpec {
    /// Creates a spec with the workspace defaults: seed 0, the paper's
    /// `M = 500` mini-batches, as many PARABACUS threads as the machine
    /// offers, pipeline depth 2, and `auto` snapshot mode.
    ///
    /// # Panics
    /// Panics if `budget < 2` (the paper's minimum; EXACT tolerates any
    /// value but keeping the floor uniform keeps specs interchangeable
    /// across kinds).
    #[must_use]
    pub fn new(kind: EstimatorKind, budget: usize) -> Self {
        assert!(
            budget >= 2,
            "estimators require a memory budget of at least 2 edges"
        );
        let parallel_defaults = ParAbacusConfig::new(budget);
        EstimatorSpec {
            kind,
            budget,
            seed: 0,
            batch_size: parallel_defaults.batch_size,
            threads: parallel_defaults.threads,
            pipeline_depth: parallel_defaults.pipeline_depth,
            snapshot: SnapshotMode::default(),
            kernel: KernelTuning::default(),
        }
    }

    /// A sequential ABACUS spec.
    #[must_use]
    pub fn abacus(budget: usize) -> Self {
        EstimatorSpec::new(EstimatorKind::Abacus, budget)
    }

    /// A mini-batch parallel PARABACUS spec.
    #[must_use]
    pub fn parabacus(budget: usize) -> Self {
        EstimatorSpec::new(EstimatorKind::ParAbacus, budget)
    }

    /// A per-vertex (local) ABACUS spec.
    #[must_use]
    pub fn local(budget: usize) -> Self {
        EstimatorSpec::new(EstimatorKind::Local, budget)
    }

    /// An insert-only FLEET3 baseline spec.
    #[must_use]
    pub fn fleet(budget: usize) -> Self {
        EstimatorSpec::new(EstimatorKind::Fleet, budget)
    }

    /// An insert-only CAS baseline spec.
    #[must_use]
    pub fn cas(budget: usize) -> Self {
        EstimatorSpec::new(EstimatorKind::Cas, budget)
    }

    /// An exact-oracle spec (the budget is ignored by the oracle).
    #[must_use]
    pub fn exact() -> Self {
        EstimatorSpec::new(EstimatorKind::Exact, 2)
    }

    /// Parses `name` into a spec with the given budget and the defaults of
    /// [`EstimatorSpec::new`] — the one parsing path shared by the CLI's
    /// `--algorithm` option and the bench harness.
    ///
    /// # Errors
    ///
    /// Returns [`EstimatorKind::EXPECTED_NAMES`] for unknown names.
    pub fn from_name(name: &str, budget: usize) -> Result<Self, &'static str> {
        Ok(EstimatorSpec::new(EstimatorKind::parse(name)?, budget))
    }

    /// Returns the spec with a different RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the spec with a different mini-batch size.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "mini-batch size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Returns the spec with a different PARABACUS thread count.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one thread is required");
        self.threads = threads;
        self
    }

    /// Returns the spec with a different pipeline depth.
    ///
    /// # Panics
    /// Panics if `pipeline_depth` is zero.
    #[must_use]
    pub fn with_pipeline_depth(mut self, pipeline_depth: usize) -> Self {
        assert!(pipeline_depth >= 1, "pipeline depth must be at least 1");
        self.pipeline_depth = pipeline_depth;
        self
    }

    /// Returns the spec with a different snapshot mode.
    #[must_use]
    pub fn with_snapshot(mut self, snapshot: SnapshotMode) -> Self {
        self.snapshot = snapshot;
        self
    }

    /// Returns the spec with different kernel cutovers.
    #[must_use]
    pub fn with_kernel_tuning(mut self, kernel: KernelTuning) -> Self {
        self.kernel = kernel;
        self
    }

    /// The equivalent sequential-ABACUS configuration (shared by the ABACUS
    /// and LOCAL kinds).
    #[must_use]
    pub fn abacus_config(&self) -> AbacusConfig {
        AbacusConfig::new(self.budget)
            .with_seed(self.seed)
            .with_snapshot(self.snapshot)
            .with_kernel_tuning(self.kernel)
    }

    /// The equivalent PARABACUS configuration.
    #[must_use]
    pub fn parabacus_config(&self) -> ParAbacusConfig {
        ParAbacusConfig::new(self.budget)
            .with_seed(self.seed)
            .with_batch_size(self.batch_size)
            .with_threads(self.threads)
            .with_pipeline_depth(self.pipeline_depth)
            .with_snapshot(self.snapshot)
            .with_kernel_tuning(self.kernel)
    }

    /// Builds the described estimator — the single construction point every
    /// front end (CLI `run`/`accuracy`, the bench runners, ensembles)
    /// routes through.
    ///
    /// The box is `Send` so replicas can be fanned out to worker threads by
    /// [`Ensemble`](crate::engine::Ensemble).
    #[must_use]
    pub fn build(&self) -> Box<dyn ButterflyCounter + Send> {
        match self.kind {
            EstimatorKind::Abacus => Box::new(Abacus::new(self.abacus_config())),
            EstimatorKind::ParAbacus => Box::new(ParAbacus::new(self.parabacus_config())),
            EstimatorKind::Local => Box::new(LocalAbacus::new(self.abacus_config())),
            EstimatorKind::Fleet => Box::new(Fleet::new(
                FleetConfig::new(self.budget).with_seed(self.seed),
            )),
            EstimatorKind::Cas => {
                Box::new(Cas::new(CasConfig::new(self.budget).with_seed(self.seed)))
            }
            EstimatorKind::Exact => Box::new(ExactCounter::new()),
        }
    }

    /// Builds the described estimator wrapped in a delta
    /// [`Circuit`](crate::circuit::Circuit) with the given views subscribed
    /// — the construction point behind the CLI's `--views` option.
    ///
    /// With an empty view list this still returns a circuit (so callers can
    /// rely on the graph-replaying wrapper uniformly); use
    /// [`build`](Self::build) when no views are wanted and the authoritative
    /// graph would be dead weight.
    #[must_use]
    pub fn build_with_views(
        &self,
        views: &[crate::circuit::ViewKind],
    ) -> Box<dyn ButterflyCounter + Send> {
        let mut circuit = crate::circuit::Circuit::new(self.build());
        for &kind in views {
            // `Circuit::add_view` is the infallible inherent form of the
            // `subscribe_view` trait hook, which only errs on non-circuits.
            circuit.add_view(kind.build());
        }
        Box::new(circuit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Edge;
    use abacus_stream::StreamElement;

    #[test]
    fn every_kind_round_trips_through_its_canonical_name() {
        for kind in EstimatorKind::ALL {
            assert_eq!(EstimatorKind::parse(kind.name()).unwrap(), kind);
            assert_eq!(kind.name().parse::<EstimatorKind>().unwrap(), kind);
            // Case-insensitive, as the CLI has always been.
            let upper = kind.name().to_ascii_uppercase();
            assert_eq!(EstimatorKind::parse(&upper).unwrap(), kind);
            assert!(
                EstimatorKind::EXPECTED_NAMES.contains(kind.name()),
                "{} missing from the canonical choice list",
                kind.name()
            );
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(
            EstimatorKind::parse("magic").unwrap_err(),
            EstimatorKind::EXPECTED_NAMES
        );
    }

    #[test]
    fn registry_builds_every_kind_with_its_table_label() {
        for kind in EstimatorKind::ALL {
            let counter = EstimatorSpec::new(kind, 64).with_seed(3).build();
            assert_eq!(counter.name(), kind.label(), "{kind}");
            assert_eq!(counter.estimate(), 0.0, "{kind}");
        }
    }

    #[test]
    fn built_estimators_process_a_butterfly() {
        // K_{2,2} = one butterfly; a covering budget makes the dynamic
        // estimators exact and the oracle trivially so.
        let stream: Vec<StreamElement> = [(0, 10), (0, 11), (1, 10), (1, 11)]
            .into_iter()
            .map(|(l, r)| StreamElement::insert(Edge::new(l, r)))
            .collect();
        for kind in EstimatorKind::ALL {
            let mut counter = EstimatorSpec::new(kind, 64).build();
            counter.process_stream(&stream);
            assert_eq!(counter.estimate(), 1.0, "{kind}");
            assert!(counter.memory_edges() >= 4, "{kind}");
        }
    }

    #[test]
    fn specs_flow_their_knobs_into_the_configs() {
        let tuning = KernelTuning {
            merge_size_ratio: 3,
            gallop_size_ratio: 50,
            ..KernelTuning::default()
        };
        let spec = EstimatorSpec::parabacus(128)
            .with_seed(9)
            .with_batch_size(64)
            .with_threads(2)
            .with_pipeline_depth(3)
            .with_snapshot(SnapshotMode::On)
            .with_kernel_tuning(tuning);
        let config = spec.parabacus_config();
        assert_eq!(config.budget, 128);
        assert_eq!(config.seed, 9);
        assert_eq!(config.batch_size, 64);
        assert_eq!(config.threads, 2);
        assert_eq!(config.pipeline_depth, 3);
        assert_eq!(config.snapshot, SnapshotMode::On);
        assert_eq!(config.kernel, tuning);
        let sequential = spec.abacus_config();
        assert_eq!(sequential.seed, 9);
        assert_eq!(sequential.snapshot, SnapshotMode::On);
        assert_eq!(sequential.kernel, tuning);
    }

    #[test]
    fn from_name_applies_the_budget() {
        let spec = EstimatorSpec::from_name("FLEET", 256).unwrap();
        assert_eq!(spec.kind, EstimatorKind::Fleet);
        assert_eq!(spec.budget, 256);
        assert_eq!(
            EstimatorSpec::from_name("nope", 256).unwrap_err(),
            EstimatorKind::EXPECTED_NAMES
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_budget_panics_at_spec_construction() {
        let _ = EstimatorSpec::abacus(1);
    }
}
