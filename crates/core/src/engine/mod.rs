//! The estimator engine: one registry that describes, builds, and scales
//! every butterfly estimator in the workspace.
//!
//! Before this layer existed, each front end (the CLI's `run` command, its
//! `accuracy` command, the bench harness's runners) carried a private
//! algorithm enum and a private `match` that constructed estimators — three
//! copies of the same factory, each of which every new tuning knob had to be
//! threaded through.  The engine collapses them into:
//!
//! * [`EstimatorSpec`] — a plain, serde-able *description* of an estimator:
//!   which algorithm ([`EstimatorKind`]), the memory budget, the seed, and
//!   the PARABACUS/snapshot/kernel tuning.  Specs are cheap `Copy` values
//!   that can be parsed from CLI strings ([`EstimatorSpec::from_name`]),
//!   stored in experiment configs, and compared.
//! * [`EstimatorSpec::build`] — the single registry turning a spec into a
//!   live `Box<dyn ButterflyCounter + Send>`, covering ABACUS, PARABACUS,
//!   LOCAL, FLEET, CAS, and EXACT.
//! * [`Ensemble`] — the horizontal-scaling layer on top of the registry:
//!   K independent replicas built from seed-derived specs, fed in parallel
//!   over the pull-based staging path and merged into one estimate
//!   ([`EnsembleMode::Replicate`] averages full-stream replicas,
//!   [`EnsembleMode::Partition`] shards the stream and sums per-shard
//!   counts).
//!
//! The registry can construct the insert-only baselines because the
//! `ButterflyCounter` trait, the sample store, and the work counters live
//! *below* both this crate and `abacus-baselines` (in `abacus-stream`,
//! `abacus-sampling`, and `abacus-metrics` respectively) — the baselines do
//! not depend on `abacus-core`, so this crate can depend on them.

pub mod checkpoint;
mod ensemble;
mod error;
mod spec;
pub mod supervisor;

pub use checkpoint::{Checkpointer, Recovery, RunManifest};
pub use ensemble::{Ensemble, EnsembleMode, EnsembleSummary};
pub use error::{EngineError, ReplicaError};
pub use spec::{EstimatorKind, EstimatorSpec};
pub use supervisor::{EnsembleSupervisor, ReplicaRecovery, SupervisorRecovery};
