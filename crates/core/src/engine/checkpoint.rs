//! Durable checkpointing: versioned `ABSNAP1` snapshots, the `ABWL1` WAL,
//! and the [`Checkpointer`] driver that ties them to a live estimator.
//!
//! A checkpoint directory contains four kinds of files:
//!
//! | file                         | format    | contents                                  |
//! |------------------------------|-----------|-------------------------------------------|
//! | `MANIFEST`                   | `ABMF1`   | the [`RunManifest`] — spec, views, cadence |
//! | `snap-{elements:020}.absnap` | `ABSNAP1` | estimator state after `elements` elements  |
//! | `wal-{first_seq:020}.abwl`   | `ABWL1`   | elements `first_seq..` since a checkpoint  |
//! | `COMMITTED`                  | `ABWM1`   | watermark: latest durable snapshot position|
//!
//! The protocol: every element is appended to the WAL *before* it is
//! processed; every `checkpoint_every` elements the estimator serializes
//! itself into a fresh snapshot, the WAL rotates to a new segment, the
//! watermark advances, and older snapshots/segments are pruned (the last two
//! snapshots are kept so a torn newest snapshot falls back cleanly).
//!
//! Recovery ([`Checkpointer::resume`]) is *load latest valid snapshot, then
//! replay the WAL from its position*.  During replay the checkpointer
//! re-performs checkpoints at every cadence multiple — this both heals any
//! snapshot lost to the crash and, crucially, keeps PARABACUS mini-batch
//! boundaries aligned with the uninterrupted run (`save_state` flushes, so a
//! checkpoint is also a batch boundary), which is what makes recovery
//! **bit-identical**, not merely statistically equivalent.

use crate::circuit::ViewKind;
use crate::config::SnapshotMode;
use crate::counter::ButterflyCounter;
use crate::engine::{EnsembleMode, EstimatorKind, EstimatorSpec};
use abacus_graph::intersect::KernelTuning;
use abacus_graph::persist::{crc32, format, Decoder, Encoder, PersistError};
use abacus_stream::persist::{
    prune_segments, read_watermark, replay_wal, seal_tail, write_watermark,
    write_watermark_with_retry, RetryPolicy, WalWriter,
};
use abacus_stream::StreamElement;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic header of a snapshot file (from the persist-format registry).
pub const SNAPSHOT_MAGIC: &[u8] = format::SNAPSHOT.magic();
/// The version byte following the magic (bumped on layout changes).
pub const SNAPSHOT_VERSION: u8 = format::SNAPSHOT.version;
/// File name of the run-manifest file inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "MANIFEST";
/// Magic header of the manifest file (from the persist-format registry).
pub const MANIFEST_MAGIC: &[u8] = format::MANIFEST.magic();
/// Snapshots kept per directory (the newest, plus one fallback).
pub const SNAPSHOTS_KEPT: usize = 2;

/// Section tag: snapshot metadata (the element position).
const SECTION_META: u8 = 1;
/// Section tag: the estimator's `save_state` payload.
const SECTION_STATE: u8 = 2;

fn snapshot_file_name(elements: u64) -> String {
    format!("snap-{elements:020}.absnap")
}

/// The path of the snapshot covering `elements` elements inside `dir`.
#[must_use]
pub fn snapshot_path(dir: &Path, elements: u64) -> PathBuf {
    dir.join(snapshot_file_name(elements))
}

/// Lists the snapshot paths of `dir`, ordered by element position.
///
/// # Errors
/// [`PersistError::Io`] on directory-read failure.
pub fn list_snapshots(dir: &Path) -> Result<Vec<PathBuf>, PersistError> {
    let mut snapshots = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("snap-") && name.ends_with(".absnap") {
            snapshots.push(entry.path());
        }
    }
    snapshots.sort();
    Ok(snapshots)
}

/// Writes an `ABSNAP1` snapshot atomically (temp file + fsync + rename).
///
/// # Errors
/// [`PersistError::Io`] on any filesystem failure.
pub fn write_snapshot(dir: &Path, elements: u64, state: &[u8]) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    let mut meta = Encoder::new();
    meta.put_u64(elements);
    let meta = meta.finish();

    let mut bytes = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 1 + 26 + meta.len() + state.len());
    bytes.extend_from_slice(SNAPSHOT_MAGIC);
    bytes.push(SNAPSHOT_VERSION);
    for (tag, payload) in [(SECTION_META, meta.as_slice()), (SECTION_STATE, state)] {
        bytes.push(tag);
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
    }

    let tmp = dir.join("snap.tmp");
    let mut file = fs::File::create(&tmp)?;
    file.write_all(&bytes)?;
    file.sync_all()?;
    drop(file);
    fs::rename(&tmp, snapshot_path(dir, elements))?;
    Ok(())
}

/// Reads and validates an `ABSNAP1` snapshot file, returning its element
/// position and the estimator payload.
///
/// # Errors
/// * [`PersistError::BadMagic`] / [`PersistError::BadVersion`] on a foreign
///   or future-format file,
/// * [`PersistError::Truncated`] when the file ends mid-section,
/// * [`PersistError::Corrupt`] on a per-section CRC mismatch or unknown
///   section layout.
pub fn read_snapshot(path: &Path) -> Result<(u64, Vec<u8>), PersistError> {
    let bytes = fs::read(path)?;
    if bytes.len() < SNAPSHOT_MAGIC.len() + 1 {
        return Err(PersistError::Truncated(format!(
            "snapshot file holds {} bytes, the header alone needs {}",
            bytes.len(),
            SNAPSHOT_MAGIC.len() + 1
        )));
    }
    if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
        return Err(PersistError::BadMagic {
            expected: format::SNAPSHOT.name,
            found: bytes[..SNAPSHOT_MAGIC.len()].to_vec(),
        });
    }
    let version = bytes[SNAPSHOT_MAGIC.len()];
    if version != SNAPSHOT_VERSION {
        return Err(PersistError::BadVersion {
            expected: SNAPSHOT_VERSION,
            found: version,
        });
    }
    let mut meta: Option<Vec<u8>> = None;
    let mut state: Option<Vec<u8>> = None;
    let mut rest = &bytes[SNAPSHOT_MAGIC.len() + 1..];
    while !rest.is_empty() {
        if rest.len() < 9 {
            return Err(PersistError::Truncated(
                "snapshot ends inside a section header".into(),
            ));
        }
        let tag = rest[0];
        let len = u64::from_le_bytes(
            rest[1..9]
                .try_into()
                .map_err(|_| PersistError::Invariant("section header is 9 bytes"))?,
        );
        let len = usize::try_from(len)
            .map_err(|_| PersistError::Corrupt("section length overflows usize".into()))?;
        rest = &rest[9..];
        if rest.len() < len + 4 {
            return Err(PersistError::Truncated(format!(
                "section {tag} claims {len} bytes, {} remain",
                rest.len().saturating_sub(4)
            )));
        }
        let payload = &rest[..len];
        let stored = u32::from_le_bytes(
            rest[len..len + 4]
                .try_into()
                .map_err(|_| PersistError::Invariant("section CRC is 4 bytes"))?,
        );
        if crc32(payload) != stored {
            return Err(PersistError::Corrupt(format!(
                "section {tag} failed its CRC check"
            )));
        }
        match tag {
            SECTION_META => meta = Some(payload.to_vec()),
            SECTION_STATE => state = Some(payload.to_vec()),
            other => {
                return Err(PersistError::Corrupt(format!(
                    "unknown snapshot section tag {other}"
                )))
            }
        }
        rest = &rest[len + 4..];
    }
    let (Some(meta), Some(state)) = (meta, state) else {
        return Err(PersistError::Truncated(
            "snapshot is missing its meta or state section".into(),
        ));
    };
    let mut dec = Decoder::new(&meta);
    let elements = dec.get_u64()?;
    dec.expect_end()?;
    Ok((elements, state))
}

/// The durable description of a checkpointed run: everything needed to
/// rebuild the estimator object a snapshot restores into.
///
/// Written once at [`Checkpointer::create`] time; [`Checkpointer::resume`]
/// reads it back and rebuilds the estimator through the same registry paths
/// (`EstimatorSpec::build`, `build_with_views`, `Ensemble::new`) the original
/// run used, so the restored object has identical configuration by
/// construction.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// The estimator description (algorithm, budget, seed, tuning).
    pub spec: EstimatorSpec,
    /// Delta-circuit views subscribed on the estimator (empty = bare).
    pub views: Vec<ViewKind>,
    /// `Some((replicas, mode))` when the run is an ensemble of `spec`.
    pub ensemble: Option<(usize, EnsembleMode)>,
    /// Checkpoint cadence in stream elements (0 = only explicit checkpoints).
    pub checkpoint_every: u64,
}

impl RunManifest {
    /// A manifest for a bare estimator checkpointed every `every` elements.
    #[must_use]
    pub fn new(spec: EstimatorSpec, every: u64) -> Self {
        RunManifest {
            spec,
            views: Vec::new(),
            ensemble: None,
            checkpoint_every: every,
        }
    }

    /// Returns the manifest with circuit views subscribed.
    #[must_use]
    pub fn with_views(mut self, views: &[ViewKind]) -> Self {
        self.views = views.to_vec();
        self
    }

    /// Returns the manifest describing an ensemble of the base spec.
    #[must_use]
    pub fn with_ensemble(mut self, replicas: usize, mode: EnsembleMode) -> Self {
        self.ensemble = Some((replicas, mode));
        self
    }

    /// Builds the described estimator through the engine registry.
    ///
    /// # Errors
    /// [`PersistError::Corrupt`] on a manifest describing a zero-replica
    /// ensemble ([`RunManifest::read`] rejects such manifests up front, so
    /// every decoded manifest builds; a hand-built one may not).
    pub fn build(&self) -> Result<Box<dyn ButterflyCounter + Send>, PersistError> {
        Ok(match self.ensemble {
            Some((replicas, mode)) => Box::new(
                crate::engine::Ensemble::new(self.spec, replicas, mode).map_err(|_| {
                    PersistError::Corrupt("manifest describes a zero-replica ensemble".into())
                })?,
            ),
            None if self.views.is_empty() => self.spec.build(),
            None => self.spec.build_with_views(&self.views),
        })
    }

    fn encode(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        enc.put_str(self.spec.kind.name());
        enc.put_usize(self.spec.budget);
        enc.put_u64(self.spec.seed);
        enc.put_usize(self.spec.batch_size);
        enc.put_usize(self.spec.threads);
        enc.put_usize(self.spec.pipeline_depth);
        enc.put_u8(match self.spec.snapshot {
            SnapshotMode::Off => 0,
            SnapshotMode::On => 1,
            SnapshotMode::Auto => 2,
        });
        enc.put_usize(self.spec.kernel.merge_size_ratio);
        enc.put_usize(self.spec.kernel.gallop_size_ratio);
        enc.put_usize(self.views.len());
        for view in &self.views {
            enc.put_str(view.name());
        }
        match self.ensemble {
            None => enc.put_u8(0),
            Some((replicas, mode)) => {
                enc.put_u8(match mode {
                    EnsembleMode::Replicate => 1,
                    EnsembleMode::Partition => 2,
                });
                enc.put_usize(replicas);
            }
        }
        enc.put_u64(self.checkpoint_every);
        enc.finish()
    }

    fn decode(payload: &[u8]) -> Result<Self, PersistError> {
        let mut dec = Decoder::new(payload);
        let kind = dec.get_str()?;
        let kind = EstimatorKind::parse(kind)
            .map_err(|_| PersistError::Corrupt(format!("unknown estimator kind '{kind}'")))?;
        let budget = dec.get_usize()?;
        if budget < 2 {
            return Err(PersistError::Corrupt(format!(
                "manifest budget {budget} is below the minimum of 2"
            )));
        }
        let mut spec = EstimatorSpec::new(kind, budget)
            .with_seed(dec.get_u64()?)
            .with_batch_size(dec.get_usize()?.max(1))
            .with_threads(dec.get_usize()?.max(1))
            .with_pipeline_depth(dec.get_usize()?.max(1));
        spec = spec.with_snapshot(match dec.get_u8()? {
            0 => SnapshotMode::Off,
            1 => SnapshotMode::On,
            2 => SnapshotMode::Auto,
            other => {
                return Err(PersistError::Corrupt(format!(
                    "invalid snapshot mode byte {other}"
                )))
            }
        });
        // The adjacency layout knobs are deliberately absent from the
        // manifest (they cannot change results); restores get the defaults.
        spec = spec.with_kernel_tuning(KernelTuning {
            merge_size_ratio: dec.get_usize()?,
            gallop_size_ratio: dec.get_usize()?,
            ..KernelTuning::default()
        });
        let num_views = dec.get_usize()?;
        if num_views > ViewKind::ALL.len() {
            return Err(PersistError::Corrupt(format!(
                "manifest lists {num_views} views, the registry has {}",
                ViewKind::ALL.len()
            )));
        }
        let mut views = Vec::with_capacity(num_views);
        for _ in 0..num_views {
            let name = dec.get_str()?;
            let kind = ViewKind::parse(name)
                .map_err(|_| PersistError::Corrupt(format!("unknown view '{name}'")))?;
            views.push(kind);
        }
        let ensemble = match dec.get_u8()? {
            0 => None,
            1 => Some((dec.get_usize()?, EnsembleMode::Replicate)),
            2 => Some((dec.get_usize()?, EnsembleMode::Partition)),
            other => {
                return Err(PersistError::Corrupt(format!(
                    "invalid ensemble mode byte {other}"
                )))
            }
        };
        if let Some((0, _)) = ensemble {
            return Err(PersistError::Corrupt(
                "manifest describes a zero-replica ensemble".into(),
            ));
        }
        let checkpoint_every = dec.get_u64()?;
        dec.expect_end()?;
        Ok(RunManifest {
            spec,
            views,
            ensemble,
            checkpoint_every,
        })
    }

    /// Writes the manifest to `dir/MANIFEST` (magic + payload + CRC).
    ///
    /// # Errors
    /// [`PersistError::Io`] on filesystem failure.
    pub fn write(&self, dir: &Path) -> Result<(), PersistError> {
        fs::create_dir_all(dir)?;
        let payload = self.encode();
        let mut bytes = Vec::with_capacity(MANIFEST_MAGIC.len() + payload.len() + 4);
        bytes.extend_from_slice(MANIFEST_MAGIC);
        bytes.extend_from_slice(&payload);
        bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
        let tmp = dir.join("MANIFEST.tmp");
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, dir.join(MANIFEST_FILE))?;
        Ok(())
    }

    /// Reads and validates `dir/MANIFEST`.
    ///
    /// # Errors
    /// [`PersistError::BadMagic`], [`PersistError::Truncated`],
    /// [`PersistError::Corrupt`] (CRC or field validation), or
    /// [`PersistError::Io`].
    pub fn read(dir: &Path) -> Result<Self, PersistError> {
        let bytes = fs::read(dir.join(MANIFEST_FILE))?;
        if bytes.len() < MANIFEST_MAGIC.len() + 4 {
            return Err(PersistError::Truncated(format!(
                "manifest holds {} bytes, the envelope alone needs {}",
                bytes.len(),
                MANIFEST_MAGIC.len() + 4
            )));
        }
        if &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
            return Err(PersistError::BadMagic {
                expected: format::MANIFEST.name,
                found: bytes[..MANIFEST_MAGIC.len()].to_vec(),
            });
        }
        let payload = &bytes[MANIFEST_MAGIC.len()..bytes.len() - 4];
        let stored = u32::from_le_bytes(
            bytes[bytes.len() - 4..]
                .try_into()
                .map_err(|_| PersistError::Invariant("manifest CRC tail is 4 bytes"))?,
        );
        if crc32(payload) != stored {
            return Err(PersistError::Corrupt(
                "manifest failed its CRC check".into(),
            ));
        }
        Self::decode(payload)
    }
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer")
            .field("dir", &self.dir)
            .field("estimator", &self.estimator.name())
            .field("elements", &self.elements)
            .field("every", &self.manifest.checkpoint_every)
            .finish()
    }
}

/// What [`Checkpointer::resume`] reconstructed, and how.
#[derive(Debug)]
pub struct Recovery {
    /// The recovered checkpointer, positioned at the end of the durable log
    /// and ready for the next [`offer`](Checkpointer::offer).
    pub checkpointer: Checkpointer,
    /// The element position of the snapshot recovery restored from.
    pub snapshot_elements: u64,
    /// Elements replayed from the WAL on top of the snapshot.
    pub replayed: u64,
    /// Whether a torn (partially written) final WAL record was dropped.
    pub dropped_torn_tail: bool,
    /// Whether the newest snapshot was unreadable and recovery fell back to
    /// an older one.
    pub fell_back: bool,
    /// Whether the `COMMITTED` watermark was missing or corrupt and was
    /// rebuilt from the durable snapshot + WAL state (never silently — the
    /// flag is the honest record that the watermark was not trusted).
    pub watermark_rebuilt: bool,
}

/// Drives a live estimator with durability: WAL-append before process,
/// snapshot + WAL rotation + watermark advance every `checkpoint_every`
/// elements.  Transient I/O failures on the WAL append and the watermark
/// rename pass through bounded retry ([`RetryPolicy`]) before surfacing.
pub struct Checkpointer {
    dir: PathBuf,
    manifest: RunManifest,
    estimator: Box<dyn ButterflyCounter + Send>,
    wal: Option<WalWriter>,
    elements: u64,
    retry: RetryPolicy,
}

impl Checkpointer {
    /// Initializes a checkpoint directory for a fresh run: writes the
    /// manifest, an element-0 snapshot (so recovery always has a floor to
    /// replay from), the watermark, and opens the first WAL segment.
    ///
    /// # Errors
    /// Any [`PersistError`] from serialization or the filesystem — including
    /// [`PersistError::Io`] with `AlreadyExists` when `dir` already holds a
    /// WAL (refusing to silently interleave two runs).
    pub fn create(dir: impl Into<PathBuf>, manifest: RunManifest) -> Result<Self, PersistError> {
        let dir = dir.into();
        let mut estimator = manifest.build()?;
        manifest.write(&dir)?;
        let state = estimator.save_state()?;
        write_snapshot(&dir, 0, &state)?;
        let wal = WalWriter::create(&dir, 0)?;
        write_watermark(&dir, 0)?;
        Ok(Checkpointer {
            dir,
            manifest,
            estimator,
            wal: Some(wal),
            elements: 0,
            retry: RetryPolicy::default(),
        })
    }

    /// Returns the checkpointer with a different bounded-retry policy for
    /// transient WAL/watermark I/O failures.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Recovers a checkpointed run: loads the newest valid snapshot (falling
    /// back to the previous one if the newest is torn or corrupt), replays
    /// the WAL from its position — re-performing checkpoints at cadence
    /// multiples so mini-batch boundaries stay aligned with the uninterrupted
    /// run — and reopens the log for appending.
    ///
    /// # Errors
    /// Any [`PersistError`]: unreadable manifest, no valid snapshot, a WAL
    /// chain with gaps ([`PersistError::Gap`]), or corrupt segments.  Never
    /// panics on corrupt input; never silently resumes from a wrong state.
    pub fn resume(dir: impl Into<PathBuf>) -> Result<Recovery, PersistError> {
        let dir = dir.into();
        let manifest = RunManifest::read(&dir)?;

        // Validate the committed watermark up front.  Missing or corrupt is
        // survivable — snapshots and the WAL are the source of truth, so the
        // watermark is rebuilt from them below and the recovery is flagged.
        // A watermark *ahead* of the durable log is checked after replay: it
        // would mean committed elements are gone, which is not survivable.
        let (watermark, watermark_rebuilt) = match read_watermark(&dir) {
            Ok(Some(committed)) => (Some(committed), false),
            Ok(None) => (None, true),
            Err(PersistError::Io(error)) => return Err(PersistError::Io(error)),
            Err(_) => (None, true),
        };

        // Newest valid snapshot wins; a torn newest falls back to the
        // previous one (kept exactly for this purpose).  Each attempt
        // restores into a freshly built estimator so a half-applied corrupt
        // payload can never leak state into the run that continues.
        let snapshots = list_snapshots(&dir)?;
        let mut restored: Option<(u64, Box<dyn ButterflyCounter + Send>)> = None;
        let mut fell_back = false;
        let mut last_error: Option<PersistError> = None;
        for path in snapshots.iter().rev() {
            let mut candidate = manifest.build()?;
            match read_snapshot(path)
                .and_then(|(elements, state)| candidate.restore_state(&state).map(|()| elements))
            {
                Ok(elements) => {
                    restored = Some((elements, candidate));
                    break;
                }
                Err(error) => {
                    fell_back = true;
                    last_error = Some(error);
                }
            }
        }
        let Some((snapshot_elements, mut estimator)) = restored else {
            return Err(last_error.unwrap_or_else(|| {
                PersistError::Truncated("checkpoint directory holds no snapshot".into())
            }));
        };

        // Truncate any torn tail record, then replay the durable suffix.
        let dropped_torn_tail = seal_tail(&dir)?;
        let recovery = replay_wal(&dir, snapshot_elements)?;
        let mut elements = snapshot_elements;
        let every = manifest.checkpoint_every;
        let mut healed = snapshot_elements;
        for &element in &recovery.elements {
            estimator.process(element);
            elements += 1;
            if every > 0 && elements % every == 0 {
                // Re-perform the checkpoint the original run took here: the
                // flush inside save_state keeps batch boundaries aligned, and
                // rewriting the snapshot heals whichever one the crash tore.
                let state = estimator.save_state()?;
                write_snapshot(&dir, elements, &state)?;
                healed = elements;
            }
        }
        if let Some(committed) = watermark {
            if committed > elements {
                // The watermark claims a position beyond the durable
                // snapshot + log: committed elements are irrecoverably
                // missing.  Fail closed — resuming would silently shorten
                // the stream.
                return Err(PersistError::Gap {
                    expected: committed,
                    found: elements,
                });
            }
        }
        if watermark_rebuilt || healed > snapshot_elements {
            write_watermark(&dir, healed)?;
        }

        let wal = WalWriter::create(&dir, elements)?;
        Ok(Recovery {
            checkpointer: Checkpointer {
                dir,
                manifest,
                estimator,
                wal: Some(wal),
                elements,
                retry: RetryPolicy::default(),
            },
            snapshot_elements,
            replayed: recovery.elements.len() as u64,
            dropped_torn_tail: dropped_torn_tail || recovery.dropped_torn_tail,
            fell_back,
            watermark_rebuilt,
        })
    }

    /// Appends `element` to the WAL, feeds it to the estimator, and
    /// checkpoints when the cadence comes due.
    ///
    /// # Errors
    /// [`PersistError::Io`] on WAL or snapshot write failure.
    pub fn offer(&mut self, element: StreamElement) -> Result<(), PersistError> {
        let retry = self.retry;
        self.wal
            .as_mut()
            .ok_or(PersistError::Invariant(
                "the WAL writer is open between calls",
            ))?
            .append_with_retry(element, &retry)?;
        self.estimator.process(element);
        self.elements += 1;
        let every = self.manifest.checkpoint_every;
        if every > 0 && self.elements.is_multiple_of(every) {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Takes a checkpoint now: snapshot, WAL rotation, watermark advance,
    /// prune.  Returns the element position the checkpoint covers.
    ///
    /// # Errors
    /// Any [`PersistError`] from serialization or the filesystem.
    pub fn checkpoint(&mut self) -> Result<u64, PersistError> {
        let state = self.estimator.save_state()?;
        write_snapshot(&self.dir, self.elements, &state)?;
        let wal = self.wal.take().ok_or(PersistError::Invariant(
            "the WAL writer is open between calls",
        ))?;
        self.wal = Some(wal.rotate()?);
        write_watermark_with_retry(&self.dir, self.elements, &self.retry)?;
        self.prune()?;
        Ok(self.elements)
    }

    /// Removes snapshots older than the newest [`SNAPSHOTS_KEPT`] and WAL
    /// segments no kept snapshot needs for replay.
    fn prune(&self) -> Result<(), PersistError> {
        let snapshots = list_snapshots(&self.dir)?;
        if snapshots.len() <= SNAPSHOTS_KEPT {
            return Ok(());
        }
        let keep = &snapshots[snapshots.len() - SNAPSHOTS_KEPT..];
        let (oldest_kept, _) = read_snapshot(&keep[0])?;
        for path in &snapshots[..snapshots.len() - SNAPSHOTS_KEPT] {
            fs::remove_file(path)?;
        }
        prune_segments(&self.dir, oldest_kept)?;
        Ok(())
    }

    /// Finalizes the run: finishes the estimator (draining any buffered
    /// work) and takes a last checkpoint, so the final state is durable.
    /// Returns the final estimate.
    ///
    /// # Errors
    /// Any [`PersistError`] from the final checkpoint.
    pub fn finish(&mut self) -> Result<f64, PersistError> {
        let estimate = self.estimator.finish();
        self.checkpoint()?;
        Ok(estimate)
    }

    /// The live estimator (read-only).
    #[must_use]
    pub fn estimator(&self) -> &dyn ButterflyCounter {
        &*self.estimator
    }

    /// The live estimator (mutable — e.g. to `finish` without checkpointing).
    pub fn estimator_mut(&mut self) -> &mut (dyn ButterflyCounter + Send) {
        &mut *self.estimator
    }

    /// Elements offered so far (snapshot position + live suffix).
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// The manifest this run was created (or resumed) with.
    #[must_use]
    pub fn manifest(&self) -> &RunManifest {
        &self.manifest
    }

    /// The checkpoint directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The committed watermark currently on disk.
    ///
    /// # Errors
    /// Any [`PersistError`] from reading the watermark file.
    pub fn committed(&self) -> Result<Option<u64>, PersistError> {
        read_watermark(&self.dir)
    }

    /// Consumes the checkpointer, sealing the open WAL segment and returning
    /// the estimator.
    ///
    /// # Errors
    /// [`PersistError::Io`] on seal failure.
    pub fn into_estimator(mut self) -> Result<Box<dyn ButterflyCounter + Send>, PersistError> {
        if let Some(wal) = self.wal.take() {
            wal.seal()?;
        }
        Ok(self.estimator)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_stream::generators::random::uniform_bipartite;
    use abacus_stream::{inject_deletions_fast, DeletionConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("abacus-checkpoint-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn dynamic_stream(seed: u64, edges: usize) -> Vec<StreamElement> {
        let base = uniform_bipartite(80, 80, edges, &mut StdRng::seed_from_u64(seed));
        inject_deletions_fast(
            &base,
            DeletionConfig::new(0.2),
            &mut StdRng::seed_from_u64(seed ^ 0xBEEF),
        )
    }

    #[test]
    fn manifest_round_trips_through_disk() {
        let dir = test_dir("manifest");
        let manifest = RunManifest::new(
            EstimatorSpec::parabacus(300)
                .with_seed(5)
                .with_batch_size(128)
                .with_threads(2)
                .with_pipeline_depth(3),
            250,
        )
        .with_views(&[ViewKind::PerEdge, ViewKind::Anomaly]);
        manifest.write(&dir).unwrap();
        assert_eq!(RunManifest::read(&dir).unwrap(), manifest);

        let ensemble = RunManifest::new(EstimatorSpec::abacus(64), 100)
            .with_ensemble(4, EnsembleMode::Partition);
        ensemble.write(&dir).unwrap();
        assert_eq!(RunManifest::read(&dir).unwrap(), ensemble);

        // Corruption fails closed.
        let path = dir.join(MANIFEST_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            RunManifest::read(&dir),
            Err(PersistError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_files_fail_closed_on_every_corruption() {
        let dir = test_dir("snapshot-corruption");
        write_snapshot(&dir, 42, b"estimator state bytes").unwrap();
        let path = snapshot_path(&dir, 42);
        let clean = fs::read(&path).unwrap();
        assert_eq!(
            read_snapshot(&path).unwrap(),
            (42, b"estimator state bytes".to_vec())
        );

        // Truncation at every prefix length is Truncated or Io, never a panic.
        for len in 0..clean.len() {
            fs::write(&path, &clean[..len]).unwrap();
            assert!(
                read_snapshot(&path).is_err(),
                "prefix of {len} bytes must not parse"
            );
        }
        // Bad magic.
        let mut bad = clean.clone();
        bad[0] = b'X';
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(PersistError::BadMagic { .. })
        ));
        // Wrong version byte.
        let mut bad = clean.clone();
        bad[SNAPSHOT_MAGIC.len()] = 9;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(PersistError::BadVersion {
                expected: SNAPSHOT_VERSION,
                found: 9
            })
        ));
        // A flipped payload bit trips the section CRC.
        let mut bad = clean.clone();
        let last = bad.len() - 5; // inside the state payload, before its CRC
        bad[last] ^= 0x01;
        fs::write(&path, &bad).unwrap();
        assert!(matches!(
            read_snapshot(&path),
            Err(PersistError::Corrupt(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically() {
        let stream = dynamic_stream(17, 1_500);
        let every = 256u64;
        let spec = EstimatorSpec::abacus(200).with_seed(13);

        // Uninterrupted reference, checkpointing at the same cadence.
        let ref_dir = test_dir("resume-reference");
        let mut reference = Checkpointer::create(&ref_dir, RunManifest::new(spec, every)).unwrap();
        for &element in &stream {
            reference.offer(element).unwrap();
        }
        let reference_estimate = reference.finish().unwrap();

        // Interrupted run: drop the checkpointer mid-stream (a crash keeps
        // the OS-buffered WAL in this model), then resume and finish.
        let crash_at = 700usize;
        let dir = test_dir("resume-crash");
        let mut interrupted = Checkpointer::create(&dir, RunManifest::new(spec, every)).unwrap();
        for &element in &stream[..crash_at] {
            interrupted.offer(element).unwrap();
        }
        drop(interrupted); // no seal, no final checkpoint: the "kill"

        let recovery = Checkpointer::resume(&dir).unwrap();
        assert_eq!(recovery.snapshot_elements, 512);
        assert_eq!(recovery.replayed, crash_at as u64 - 512);
        let mut resumed = recovery.checkpointer;
        assert_eq!(resumed.elements(), crash_at as u64);
        for &element in &stream[crash_at..] {
            resumed.offer(element).unwrap();
        }
        let resumed_estimate = resumed.finish().unwrap();

        assert_eq!(reference_estimate.to_bits(), resumed_estimate.to_bits());
        assert_eq!(
            resumed.committed().unwrap(),
            Some(stream.len() as u64),
            "the final checkpoint advances the watermark to the stream end"
        );
        fs::remove_dir_all(&ref_dir).unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_newest_snapshot_falls_back_to_the_previous_one() {
        let stream = dynamic_stream(23, 900);
        let every = 200u64;
        let spec = EstimatorSpec::abacus(128).with_seed(3);
        let dir = test_dir("fallback");
        let mut run = Checkpointer::create(&dir, RunManifest::new(spec, every)).unwrap();
        for &element in &stream {
            run.offer(element).unwrap();
        }
        drop(run);

        // Tear the newest snapshot: recovery must fall back to the previous
        // one and replay the WAL across the gap.
        let snapshots = list_snapshots(&dir).unwrap();
        assert_eq!(snapshots.len(), SNAPSHOTS_KEPT);
        let (newest_elements, _) = read_snapshot(&snapshots[1]).unwrap();
        let (prev_elements, _) = read_snapshot(&snapshots[0]).unwrap();
        let bytes = fs::read(&snapshots[1]).unwrap();
        fs::write(&snapshots[1], &bytes[..bytes.len() / 2]).unwrap();

        let recovery = Checkpointer::resume(&dir).unwrap();
        assert!(recovery.fell_back);
        assert_eq!(recovery.snapshot_elements, prev_elements);
        assert_eq!(
            recovery.checkpointer.elements(),
            stream.len() as u64,
            "replay reaches the end of the durable log"
        );

        // Replay re-performed the torn checkpoint, healing the tear.
        assert!(read_snapshot(&snapshot_path(&dir, newest_elements)).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn pruning_keeps_a_fallback_snapshot_and_its_wal_suffix() {
        let stream = dynamic_stream(31, 1_200);
        let spec = EstimatorSpec::abacus(64).with_seed(1);
        let dir = test_dir("prune");
        let mut run = Checkpointer::create(&dir, RunManifest::new(spec, 100)).unwrap();
        for &element in &stream {
            run.offer(element).unwrap();
        }
        run.finish().unwrap();
        let snapshots = list_snapshots(&dir).unwrap();
        assert_eq!(snapshots.len(), SNAPSHOTS_KEPT);
        // Both kept snapshots restore.
        for path in &snapshots {
            assert!(read_snapshot(path).is_ok());
        }
        // The WAL still reaches back to the older kept snapshot.
        let (oldest, _) = read_snapshot(&snapshots[0]).unwrap();
        assert!(replay_wal(&dir, oldest).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }
}
