//! Estimator configuration.

/// Configuration of the sequential ABACUS estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbacusConfig {
    /// Memory budget `k`: the maximum number of edges kept in the sample.
    /// The paper requires `k ≥ 2`; butterfly discovery needs at least 3.
    pub budget: usize,
    /// Seed of the estimator's private RNG (sampling decisions only).
    pub seed: u64,
}

impl AbacusConfig {
    /// Creates a configuration with the given memory budget and seed 0.
    ///
    /// # Panics
    /// Panics if `budget < 2` (the paper's minimum).
    #[must_use]
    pub fn new(budget: usize) -> Self {
        assert!(
            budget >= 2,
            "ABACUS requires a memory budget of at least 2 edges"
        );
        AbacusConfig { budget, seed: 0 }
    }

    /// Returns the configuration with a different RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for AbacusConfig {
    fn default() -> Self {
        // A sensible laptop-scale default mirroring the paper's mid-range
        // sample size after dataset scaling (see DESIGN.md).
        AbacusConfig {
            budget: 3_000,
            seed: 0,
        }
    }
}

/// Configuration of the mini-batch parallel PARABACUS estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParAbacusConfig {
    /// Memory budget `k`, as in [`AbacusConfig`].
    pub budget: usize,
    /// Seed of the estimator's private RNG.
    pub seed: u64,
    /// Mini-batch size `M` (the paper's default is 500 edges).
    pub batch_size: usize,
    /// Number of worker threads `p` used for per-edge counting.
    pub threads: usize,
    /// Maximum number of mini-batches the two-stage pipeline keeps open at
    /// once: the batch whose sample versions are being created (phase 1) plus
    /// up to `pipeline_depth - 1` batches still being counted by the worker
    /// pool.  `1` disables pipelining and restores the paper's strictly
    /// alternating phase-1/phase-2 schedule; the default of `2` overlaps each
    /// batch's sequential phase with the previous batch's parallel phase.
    pub pipeline_depth: usize,
}

impl ParAbacusConfig {
    /// Creates a configuration with the paper's defaults (`M = 500`), as
    /// many threads as the machine offers, and a pipeline depth of 2.
    ///
    /// # Panics
    /// Panics if `budget < 2`.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        assert!(
            budget >= 2,
            "PARABACUS requires a memory budget of at least 2 edges"
        );
        ParAbacusConfig {
            budget,
            seed: 0,
            batch_size: 500,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            pipeline_depth: 2,
        }
    }

    /// Returns the configuration with a different RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with a different mini-batch size.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "mini-batch size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Returns the configuration with a different thread count.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one thread is required");
        self.threads = threads;
        self
    }

    /// Returns the configuration with a different pipeline depth.
    ///
    /// # Panics
    /// Panics if `pipeline_depth` is zero.
    #[must_use]
    pub fn with_pipeline_depth(mut self, pipeline_depth: usize) -> Self {
        assert!(pipeline_depth >= 1, "pipeline depth must be at least 1");
        self.pipeline_depth = pipeline_depth;
        self
    }

    /// The equivalent sequential configuration (same budget and seed).
    #[must_use]
    pub fn sequential(&self) -> AbacusConfig {
        AbacusConfig {
            budget: self.budget,
            seed: self.seed,
        }
    }
}

impl Default for ParAbacusConfig {
    fn default() -> Self {
        ParAbacusConfig::new(AbacusConfig::default().budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abacus_config_builders() {
        let c = AbacusConfig::new(100).with_seed(9);
        assert_eq!(c.budget, 100);
        assert_eq!(c.seed, 9);
        assert!(AbacusConfig::default().budget >= 2);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_budget_panics() {
        let _ = AbacusConfig::new(1);
    }

    #[test]
    fn parabacus_config_builders() {
        let c = ParAbacusConfig::new(64)
            .with_seed(3)
            .with_batch_size(128)
            .with_threads(4)
            .with_pipeline_depth(3);
        assert_eq!(c.budget, 64);
        assert_eq!(c.seed, 3);
        assert_eq!(c.batch_size, 128);
        assert_eq!(c.threads, 4);
        assert_eq!(c.pipeline_depth, 3);
        let seq = c.sequential();
        assert_eq!(seq.budget, 64);
        assert_eq!(seq.seed, 3);
    }

    #[test]
    fn parabacus_defaults_use_paper_batch_size() {
        let c = ParAbacusConfig::new(64);
        assert_eq!(c.batch_size, 500);
        assert!(c.threads >= 1);
        assert_eq!(c.pipeline_depth, 2);
    }

    #[test]
    #[should_panic(expected = "pipeline depth")]
    fn zero_pipeline_depth_panics() {
        let _ = ParAbacusConfig::new(64).with_pipeline_depth(0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = ParAbacusConfig::new(64).with_threads(0);
    }

    #[test]
    #[should_panic(expected = "mini-batch")]
    fn zero_batch_panics() {
        let _ = ParAbacusConfig::new(64).with_batch_size(0);
    }
}
