//! Estimator configuration.

use abacus_graph::intersect::KernelTuning;

/// Smallest budget at which [`SnapshotMode::Auto`] enables the frozen CSR
/// counting snapshot.
///
/// Below this the adjacency sets are tiny, the probe kernels are already
/// cache-resident, and the per-element snapshot maintenance would cost more
/// than the intersections it accelerates.
pub const AUTO_SNAPSHOT_MIN_BUDGET: usize = 256;

/// Whether the estimators count against a frozen CSR snapshot of the sample
/// (see `abacus_graph::csr`) instead of the hash-backed sample itself.
///
/// Which backing counts is purely a performance choice: estimates are
/// bit-identical (up to floating-point summation order across worker
/// threads) and the probe-model `comparisons` counters are unchanged, which
/// the snapshot-parity test suite asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SnapshotMode {
    /// Always count against the hash-backed sample (the ablation baseline).
    Off,
    /// Always maintain and count against the CSR snapshot.
    On,
    /// Let each estimator enable the snapshot when it is expected to pay for
    /// its maintenance (the default).  Sequential ABACUS always keeps the
    /// hash path (per-element mirroring measured net-negative: −37% on the
    /// Movielens-like analog, −6.6% on Trackers-like — see
    /// `BENCH_parabacus.json`); PARABACUS enables the snapshot per batch
    /// once the budget reaches [`AUTO_SNAPSHOT_MIN_BUDGET`], the mini-batch
    /// is large enough, and the observed probe density (probes per sample
    /// mutation) sits inside the measured profitability band (see
    /// `ParAbacus`).  Which backing counts is numerically invisible, so this
    /// only ever affects wall time.
    #[default]
    Auto,
}

impl SnapshotMode {
    /// Resolves the mode for a concrete memory budget.
    #[must_use]
    pub fn enabled_for(self, budget: usize) -> bool {
        match self {
            SnapshotMode::Off => false,
            SnapshotMode::On => true,
            SnapshotMode::Auto => budget >= AUTO_SNAPSHOT_MIN_BUDGET,
        }
    }
}

impl std::str::FromStr for SnapshotMode {
    type Err = String;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        match raw.to_ascii_lowercase().as_str() {
            "off" => Ok(SnapshotMode::Off),
            "on" => Ok(SnapshotMode::On),
            "auto" => Ok(SnapshotMode::Auto),
            other => Err(format!("unknown snapshot mode '{other}'")),
        }
    }
}

/// Configuration of the sequential ABACUS estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbacusConfig {
    /// Memory budget `k`: the maximum number of edges kept in the sample.
    /// The paper requires `k ≥ 2`; butterfly discovery needs at least 3.
    pub budget: usize,
    /// Seed of the estimator's private RNG (sampling decisions only).
    pub seed: u64,
    /// Whether counting runs against the frozen CSR snapshot.
    pub snapshot: SnapshotMode,
    /// Cutover ratios of the adaptive intersection kernels.
    pub kernel: KernelTuning,
}

impl AbacusConfig {
    /// Creates a configuration with the given memory budget and seed 0.
    ///
    /// # Panics
    /// Panics if `budget < 2` (the paper's minimum).
    #[must_use]
    pub fn new(budget: usize) -> Self {
        assert!(
            budget >= 2,
            "ABACUS requires a memory budget of at least 2 edges"
        );
        AbacusConfig {
            budget,
            seed: 0,
            snapshot: SnapshotMode::default(),
            kernel: KernelTuning::default(),
        }
    }

    /// Returns the configuration with a different RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with a different snapshot mode.
    #[must_use]
    pub fn with_snapshot(mut self, snapshot: SnapshotMode) -> Self {
        self.snapshot = snapshot;
        self
    }

    /// Returns the configuration with different kernel cutovers.
    #[must_use]
    pub fn with_kernel_tuning(mut self, kernel: KernelTuning) -> Self {
        self.kernel = kernel;
        self
    }

    /// Whether the sequential estimator counts against the CSR snapshot.
    ///
    /// `Auto` resolves to the hash path here: ABACUS mirrors every sample
    /// mutation into the snapshot *per element*, and on the bench workloads
    /// that maintenance costs more than the sorted kernels recover —
    /// `BENCH_parabacus.json` measures forcing the snapshot on as a −37%
    /// regression on the Movielens-like analog and −6.6% on Trackers-like,
    /// so there is no sequential workload in the sweep where it pays (the
    /// mini-batch PARABACUS amortises the same maintenance per batch and
    /// decides adaptively instead).  `On` forces the snapshot for ablation.
    #[must_use]
    pub fn snapshot_enabled(&self) -> bool {
        self.snapshot == SnapshotMode::On
    }
}

impl Default for AbacusConfig {
    fn default() -> Self {
        // A sensible laptop-scale default mirroring the paper's mid-range
        // sample size after dataset scaling (see DESIGN.md).
        AbacusConfig::new(3_000)
    }
}

/// Configuration of the mini-batch parallel PARABACUS estimator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParAbacusConfig {
    /// Memory budget `k`, as in [`AbacusConfig`].
    pub budget: usize,
    /// Seed of the estimator's private RNG.
    pub seed: u64,
    /// Mini-batch size `M` (the paper's default is 500 edges).
    pub batch_size: usize,
    /// Number of worker threads `p` used for per-edge counting.
    pub threads: usize,
    /// Maximum number of mini-batches the two-stage pipeline keeps open at
    /// once: the batch whose sample versions are being created (phase 1) plus
    /// up to `pipeline_depth - 1` batches still being counted by the worker
    /// pool.  `1` disables pipelining and restores the paper's strictly
    /// alternating phase-1/phase-2 schedule; the default of `2` overlaps each
    /// batch's sequential phase with the previous batch's parallel phase.
    pub pipeline_depth: usize,
    /// Whether phase-2 counting runs against the frozen CSR snapshot.
    pub snapshot: SnapshotMode,
    /// Cutover ratios of the adaptive intersection kernels.
    pub kernel: KernelTuning,
}

impl ParAbacusConfig {
    /// Creates a configuration with the paper's defaults (`M = 500`), as
    /// many threads as the machine offers, and a pipeline depth of 2.
    ///
    /// # Panics
    /// Panics if `budget < 2`.
    #[must_use]
    pub fn new(budget: usize) -> Self {
        assert!(
            budget >= 2,
            "PARABACUS requires a memory budget of at least 2 edges"
        );
        ParAbacusConfig {
            budget,
            seed: 0,
            batch_size: 500,
            threads: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            pipeline_depth: 2,
            snapshot: SnapshotMode::default(),
            kernel: KernelTuning::default(),
        }
    }

    /// Returns the configuration with a different RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the configuration with a different mini-batch size.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    #[must_use]
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size >= 1, "mini-batch size must be at least 1");
        self.batch_size = batch_size;
        self
    }

    /// Returns the configuration with a different thread count.
    ///
    /// # Panics
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "at least one thread is required");
        self.threads = threads;
        self
    }

    /// Returns the configuration with a different pipeline depth.
    ///
    /// # Panics
    /// Panics if `pipeline_depth` is zero.
    #[must_use]
    pub fn with_pipeline_depth(mut self, pipeline_depth: usize) -> Self {
        assert!(pipeline_depth >= 1, "pipeline depth must be at least 1");
        self.pipeline_depth = pipeline_depth;
        self
    }

    /// Returns the configuration with a different snapshot mode.
    #[must_use]
    pub fn with_snapshot(mut self, snapshot: SnapshotMode) -> Self {
        self.snapshot = snapshot;
        self
    }

    /// Returns the configuration with different kernel cutovers.
    #[must_use]
    pub fn with_kernel_tuning(mut self, kernel: KernelTuning) -> Self {
        self.kernel = kernel;
        self
    }

    /// Whether this configuration is *eligible* to count against the CSR
    /// snapshot: always under `On`, never under `Off`, and — under `Auto` —
    /// when the budget clears [`AUTO_SNAPSHOT_MIN_BUDGET`].  For an eligible
    /// `Auto` configuration the estimator additionally decides per batch
    /// from its observed counting density whether the snapshot pays for its
    /// maintenance (see `ParAbacus`).
    #[must_use]
    pub fn snapshot_enabled(&self) -> bool {
        self.snapshot.enabled_for(self.budget)
    }

    /// The equivalent sequential configuration (same budget, seed, snapshot
    /// mode, and kernel cutovers).
    #[must_use]
    pub fn sequential(&self) -> AbacusConfig {
        AbacusConfig {
            budget: self.budget,
            seed: self.seed,
            snapshot: self.snapshot,
            kernel: self.kernel,
        }
    }
}

impl Default for ParAbacusConfig {
    fn default() -> Self {
        ParAbacusConfig::new(AbacusConfig::default().budget)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abacus_config_builders() {
        let c = AbacusConfig::new(100).with_seed(9);
        assert_eq!(c.budget, 100);
        assert_eq!(c.seed, 9);
        assert!(AbacusConfig::default().budget >= 2);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_budget_panics() {
        let _ = AbacusConfig::new(1);
    }

    #[test]
    fn snapshot_mode_resolution_and_parsing() {
        assert!(!SnapshotMode::Off.enabled_for(1_000_000));
        assert!(SnapshotMode::On.enabled_for(2));
        assert!(!SnapshotMode::Auto.enabled_for(AUTO_SNAPSHOT_MIN_BUDGET - 1));
        assert!(SnapshotMode::Auto.enabled_for(AUTO_SNAPSHOT_MIN_BUDGET));
        assert_eq!("on".parse::<SnapshotMode>().unwrap(), SnapshotMode::On);
        assert_eq!("OFF".parse::<SnapshotMode>().unwrap(), SnapshotMode::Off);
        assert_eq!("Auto".parse::<SnapshotMode>().unwrap(), SnapshotMode::Auto);
        assert!("sometimes".parse::<SnapshotMode>().is_err());
    }

    #[test]
    fn snapshot_and_kernel_settings_flow_through_builders() {
        let tuning = KernelTuning {
            merge_size_ratio: 3,
            gallop_size_ratio: 99,
            ..KernelTuning::default()
        };
        let c = AbacusConfig::new(100)
            .with_snapshot(SnapshotMode::On)
            .with_kernel_tuning(tuning);
        assert!(c.snapshot_enabled());
        assert_eq!(c.kernel, tuning);

        let p = ParAbacusConfig::new(100)
            .with_snapshot(SnapshotMode::Off)
            .with_kernel_tuning(tuning);
        assert!(!p.snapshot_enabled());
        let seq = p.sequential();
        assert_eq!(seq.snapshot, SnapshotMode::Off);
        assert_eq!(seq.kernel, tuning);
        // Auto: the parallel estimator is eligible above the budget
        // threshold; the sequential one stays on the hash path (per-element
        // mirroring measured slower than the kernels it feeds).
        assert!(!ParAbacusConfig::new(64).snapshot_enabled());
        assert!(ParAbacusConfig::new(3_000).snapshot_enabled());
        assert!(!AbacusConfig::new(3_000).snapshot_enabled());
        assert!(AbacusConfig::new(3_000)
            .with_snapshot(SnapshotMode::On)
            .snapshot_enabled());
    }

    #[test]
    fn parabacus_config_builders() {
        let c = ParAbacusConfig::new(64)
            .with_seed(3)
            .with_batch_size(128)
            .with_threads(4)
            .with_pipeline_depth(3);
        assert_eq!(c.budget, 64);
        assert_eq!(c.seed, 3);
        assert_eq!(c.batch_size, 128);
        assert_eq!(c.threads, 4);
        assert_eq!(c.pipeline_depth, 3);
        let seq = c.sequential();
        assert_eq!(seq.budget, 64);
        assert_eq!(seq.seed, 3);
    }

    #[test]
    fn parabacus_defaults_use_paper_batch_size() {
        let c = ParAbacusConfig::new(64);
        assert_eq!(c.batch_size, 500);
        assert!(c.threads >= 1);
        assert_eq!(c.pipeline_depth, 2);
    }

    #[test]
    #[should_panic(expected = "pipeline depth")]
    fn zero_pipeline_depth_panics() {
        let _ = ParAbacusConfig::new(64).with_pipeline_depth(0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let _ = ParAbacusConfig::new(64).with_threads(0);
    }

    #[test]
    #[should_panic(expected = "mini-batch")]
    fn zero_batch_panics() {
        let _ = ParAbacusConfig::new(64).with_batch_size(0);
    }
}
