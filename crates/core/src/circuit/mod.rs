//! The incremental multi-view delta circuit: one ingest, N bit-exact live
//! views.
//!
//! [`Circuit`] wraps any [`ButterflyCounter`] and threads every stream
//! element through three synchronized consumers:
//!
//! 1. the wrapped **estimator** (view #0 — the global estimate),
//! 2. an **authoritative graph** replaying the full edge relation,
//! 3. every subscribed [`DeltaView`], each folding the element's delta into
//!    live derived state (per-edge supports, per-vertex counts, clustering
//!    coefficient, bitruss tiers, anomaly windows).
//!
//! The circuit enumerates the butterflies a mutation creates or destroys
//! **once** — with [`for_each_butterfly_with_edge`] against the pre-insert /
//! post-delete graph, the same orientation the exact oracle counts with —
//! and fans the `(x, w)` partner pairs out to every view that wants them, so
//! adding a view costs only its fold, not another enumeration.  Views are
//! maintained inside `process`, single-threaded and element-ordered, which
//! makes their state independent of the host estimator's chunk size, thread
//! count, and pipeline depth by construction.
//!
//! ```
//! use abacus_core::circuit::{Circuit, ViewKind};
//! use abacus_core::{ButterflyCounter, ExactCounter};
//! use abacus_stream::StreamElement;
//! use abacus_graph::Edge;
//!
//! let mut circuit = Circuit::new(ExactCounter::new())
//!     .with_view(ViewKind::Clustering.build());
//! for (l, r) in [(0, 10), (0, 11), (1, 10), (1, 11)] {
//!     circuit.process(StreamElement::insert(Edge::new(l, r)));
//! }
//! assert_eq!(circuit.estimate(), 1.0);
//! assert_eq!(circuit.view_reports().len(), 1);
//! ```

mod views;

pub use views::{
    AnomalyView, BitrussView, ClusteringView, PerEdgeView, PerVertexView, DEFAULT_ANOMALY_WINDOW,
};

use crate::counter::ButterflyCounter;
use abacus_graph::persist::{Decoder, Encoder, PersistError};
use abacus_graph::{for_each_butterfly_with_edge, BipartiteGraph, Edge};
use abacus_stream::{DeltaEvent, DeltaView, StreamElement};

/// Every view the registry can build, in canonical presentation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ViewKind {
    /// Per-edge butterfly supports ([`PerEdgeView`]).
    PerEdge,
    /// Per-vertex butterfly counts ([`PerVertexView`]).
    Vertex,
    /// Butterfly clustering coefficient ([`ClusteringView`]).
    Clustering,
    /// Bitruss-tier membership ([`BitrussView`]).
    Bitruss,
    /// Windowed anomaly series ([`AnomalyView`]).
    Anomaly,
}

impl ViewKind {
    /// Every kind, in canonical presentation order.
    pub const ALL: [ViewKind; 5] = [
        ViewKind::PerEdge,
        ViewKind::Vertex,
        ViewKind::Clustering,
        ViewKind::Bitruss,
        ViewKind::Anomaly,
    ];

    /// The canonical choice list, phrased for error messages — shared by the
    /// CLI's `--views` option so the two cannot drift apart.
    pub const EXPECTED_NAMES: &'static str =
        "peredge, vertex, clustering, bitruss, anomaly, or all";

    /// The canonical (lower-case) name, accepted by [`ViewKind::parse`].
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ViewKind::PerEdge => "peredge",
            ViewKind::Vertex => "vertex",
            ViewKind::Clustering => "clustering",
            ViewKind::Bitruss => "bitruss",
            ViewKind::Anomaly => "anomaly",
        }
    }

    /// Parses a kind from its canonical name, case-insensitively.
    ///
    /// # Errors
    /// Returns [`ViewKind::EXPECTED_NAMES`] for anything unrecognised.
    pub fn parse(raw: &str) -> Result<Self, &'static str> {
        let lower = raw.trim().to_ascii_lowercase();
        ViewKind::ALL
            .into_iter()
            .find(|kind| kind.name() == lower)
            .ok_or(Self::EXPECTED_NAMES)
    }

    /// Parses a comma-separated view list (e.g. `peredge,vertex,anomaly`).
    ///
    /// `all` expands to every kind; duplicates collapse to their first
    /// occurrence so a view is never registered (and paid for) twice.
    ///
    /// # Errors
    /// Returns [`ViewKind::EXPECTED_NAMES`] when any entry is unrecognised.
    pub fn parse_list(raw: &str) -> Result<Vec<Self>, &'static str> {
        let mut kinds = Vec::new();
        for entry in raw.split(',') {
            if entry.trim().eq_ignore_ascii_case("all") {
                for kind in ViewKind::ALL {
                    if !kinds.contains(&kind) {
                        kinds.push(kind);
                    }
                }
                continue;
            }
            let kind = ViewKind::parse(entry)?;
            if !kinds.contains(&kind) {
                kinds.push(kind);
            }
        }
        Ok(kinds)
    }

    /// Builds the described view with its registry defaults (the anomaly
    /// view snapshots every [`DEFAULT_ANOMALY_WINDOW`] elements; construct
    /// [`AnomalyView`] directly for a custom window).
    #[must_use]
    pub fn build(self) -> Box<dyn DeltaView + Send> {
        match self {
            ViewKind::PerEdge => Box::new(PerEdgeView::new()),
            ViewKind::Vertex => Box::new(PerVertexView::new()),
            ViewKind::Clustering => Box::new(ClusteringView::new()),
            ViewKind::Bitruss => Box::new(BitrussView::new()),
            ViewKind::Anomaly => Box::new(AnomalyView::default()),
        }
    }
}

impl std::str::FromStr for ViewKind {
    type Err = &'static str;

    fn from_str(raw: &str) -> Result<Self, Self::Err> {
        ViewKind::parse(raw)
    }
}

impl std::fmt::Display for ViewKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A delta circuit: an estimator plus an authoritative graph fanning each
/// element's delta out to subscribed views.
///
/// The circuit is itself a [`ButterflyCounter`], so it slots into every
/// driver in the workspace (sources, monitors, the CLI, the bench harness)
/// wherever the bare estimator would.  `estimate`/`finish` delegate to the
/// wrapped estimator; `memory_edges` additionally charges the authoritative
/// graph the views fold against.
pub struct Circuit<C: ButterflyCounter> {
    estimator: C,
    graph: BipartiteGraph,
    views: Vec<Box<dyn DeltaView + Send>>,
    scratch: Vec<(u32, u32)>,
    elements: u64,
    wants_pairs: bool,
    wants_graph: bool,
}

impl<C: ButterflyCounter> std::fmt::Debug for Circuit<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Circuit")
            .field("estimator", &self.estimator.name())
            .field(
                "views",
                &self.views.iter().map(|v| v.name()).collect::<Vec<_>>(),
            )
            .field("edges", &self.graph.num_edges())
            .field("elements", &self.elements)
            .finish()
    }
}

impl<C: ButterflyCounter> Circuit<C> {
    /// Wraps `estimator` in a circuit with no views subscribed yet.
    #[must_use]
    pub fn new(estimator: C) -> Self {
        Circuit {
            estimator,
            graph: BipartiteGraph::new(),
            views: Vec::new(),
            scratch: Vec::new(),
            elements: 0,
            wants_pairs: false,
            wants_graph: false,
        }
    }

    /// Builder-style [`add_view`](Self::add_view).
    #[must_use]
    pub fn with_view(mut self, view: Box<dyn DeltaView + Send>) -> Self {
        self.add_view(view);
        self
    }

    /// Subscribes a view.  Views folded from element 0 onward stay bit-exact
    /// with offline recomputation; subscribing mid-stream is allowed but the
    /// view then only reflects deltas from this point on.
    ///
    /// Both maintenance costs are demand-driven: butterfly enumeration runs
    /// only once a view with [`needs_butterflies`] subscribes, and the
    /// authoritative graph replica is maintained only once a view with
    /// [`needs_graph`] (or [`needs_butterflies`] — enumeration reads the
    /// replica) subscribes.  A replica-free circuit (e.g. anomaly-only)
    /// cannot detect duplicate inserts or absent deletes and reports every
    /// element as applied, which is exactly what its estimate-only views
    /// expect.
    ///
    /// [`needs_butterflies`]: DeltaView::needs_butterflies
    /// [`needs_graph`]: DeltaView::needs_graph
    pub fn add_view(&mut self, view: Box<dyn DeltaView + Send>) {
        self.wants_pairs = self.wants_pairs || view.needs_butterflies();
        self.wants_graph = self.wants_graph || view.needs_butterflies() || view.needs_graph();
        self.views.push(view);
    }

    /// The wrapped estimator.
    #[must_use]
    pub fn estimator(&self) -> &C {
        &self.estimator
    }

    /// The authoritative graph (every applied insertion minus every applied
    /// deletion, i.e. the current edge relation of the stream).  Stays empty
    /// when no subscribed view needs it — replica maintenance is
    /// demand-driven (see [`add_view`](Self::add_view)).
    #[must_use]
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Stream elements processed so far.
    #[must_use]
    pub fn elements(&self) -> u64 {
        self.elements
    }

    /// The subscribed views, in subscription order.
    #[must_use]
    pub fn views(&self) -> &[Box<dyn DeltaView + Send>] {
        &self.views
    }

    /// One `(name, lines)` report per subscribed view, evaluated against the
    /// circuit's current graph.
    #[must_use]
    pub fn view_reports(&self) -> Vec<(&'static str, Vec<String>)> {
        self.views
            .iter()
            .map(|view| (view.name(), view.report(&self.graph)))
            .collect()
    }

    /// The first subscribed view of concrete type `V`, if any — the typed
    /// hatch parity tests and report paths use to read maintained state.
    #[must_use]
    pub fn view_state<V: 'static>(&self) -> Option<&V> {
        self.views
            .iter()
            .find_map(|view| view.as_any().downcast_ref::<V>())
    }

    /// Consumes the circuit and returns the wrapped estimator.
    #[must_use]
    pub fn into_estimator(self) -> C {
        self.estimator
    }

    fn fan_out(&mut self, element: StreamElement, applied: bool) {
        let event = DeltaEvent {
            element,
            applied,
            graph: &self.graph,
            butterflies: &self.scratch,
            estimate: self.estimator.estimate(),
            elements: self.elements,
        };
        for view in &mut self.views {
            view.apply_delta(&event);
        }
    }

    fn enumerate_pairs(&mut self, element: StreamElement) {
        let graph = &self.graph;
        let scratch = &mut self.scratch;
        for_each_butterfly_with_edge(graph, element.edge, &mut |x, w| scratch.push((x, w)));
    }
}

impl<C: ButterflyCounter + 'static> ButterflyCounter for Circuit<C> {
    /// Processes one element: estimator first, then the view fan-out, with
    /// the graph mutated in the exact oracle's orientation — insertions are
    /// enumerated and fanned out against the graph *without* the new edge
    /// (it is inserted after), deletions against the graph with the edge
    /// already removed.  When no subscribed view needs the graph the replica
    /// is skipped and every element fans out as applied.
    fn process(&mut self, element: StreamElement) {
        self.elements += 1;
        self.scratch.clear();
        if !self.wants_graph {
            // Replica-free fast path: no subscribed view reads the graph or
            // the applied flag, so skip replica maintenance entirely.
            self.estimator.process(element);
            self.fan_out(element, true);
            return;
        }
        if element.delta.is_insert() {
            let applied = !self.graph.has_edge(element.edge);
            if applied && self.wants_pairs {
                self.enumerate_pairs(element);
            }
            self.estimator.process(element);
            self.fan_out(element, applied);
            if applied {
                self.graph.insert_edge(element.edge);
            }
        } else {
            let applied = self.graph.delete_edge(element.edge);
            if applied && self.wants_pairs {
                self.enumerate_pairs(element);
            }
            self.estimator.process(element);
            self.fan_out(element, applied);
        }
    }

    fn estimate(&self) -> f64 {
        self.estimator.estimate()
    }

    fn finish(&mut self) -> f64 {
        let estimate = self.estimator.finish();
        for view in &mut self.views {
            view.finish(estimate);
        }
        estimate
    }

    fn preferred_chunk(&self) -> usize {
        self.estimator.preferred_chunk()
    }

    fn memory_edges(&self) -> usize {
        self.estimator.memory_edges() + self.graph.num_edges()
    }

    fn name(&self) -> &'static str {
        self.estimator.name()
    }

    /// Returns the *circuit*, so front ends can reach
    /// [`view_reports`](Self::view_reports) /
    /// [`view_state`](Self::view_state); the wrapped estimator stays
    /// reachable through [`estimator`](Self::estimator).
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn subscribe_view(
        &mut self,
        view: Box<dyn DeltaView + Send>,
    ) -> Result<(), Box<dyn DeltaView + Send>> {
        self.add_view(view);
        Ok(())
    }

    /// Serializes the wrapped estimator, the authoritative graph (as a sorted
    /// edge list — hash order is history-dependent) and the subscribed view
    /// roster.  Graph-derived view states are *not* carried: they are pure
    /// functions of the graph and are recomputed offline on restore, exact by
    /// each view's parity contract.  Only the anomaly series — pure history —
    /// travels in the payload.  Circuits holding a view outside the
    /// [`ViewKind`] registry cannot be checkpointed.
    fn save_state(&mut self) -> Result<Vec<u8>, PersistError> {
        for view in &self.views {
            if ViewKind::parse(view.name()).is_err() {
                return Err(PersistError::Unsupported(
                    "circuit with a view outside the ViewKind registry",
                ));
            }
        }
        let inner = self.estimator.save_state()?;
        let mut enc = Encoder::new();
        enc.put_bytes(&inner);
        enc.put_u64(self.elements);
        let mut edges: Vec<Edge> = self.graph.edges().collect();
        edges.sort_unstable_by_key(|e| (e.left, e.right));
        enc.put_usize(edges.len());
        for edge in edges {
            enc.put_u32(edge.left);
            enc.put_u32(edge.right);
        }
        enc.put_usize(self.views.len());
        for view in &self.views {
            enc.put_str(view.name());
            if let Some(anomaly) = view.as_any().downcast_ref::<AnomalyView>() {
                let mut payload = Encoder::new();
                crate::persist::encode_series(&mut payload, anomaly.series());
                enc.put_bytes(&payload.finish());
            } else {
                enc.put_bytes(&[]);
            }
        }
        Ok(enc.finish())
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), PersistError> {
        let mut dec = Decoder::new(state);
        let inner = dec.get_bytes()?;
        let elements = dec.get_u64()?;
        let num_edges = dec.get_usize()?;
        if num_edges > dec.remaining() / 8 {
            return Err(PersistError::Truncated(format!(
                "circuit edge list claims {num_edges} edges, payload holds at most {}",
                dec.remaining() / 8
            )));
        }
        let mut graph = BipartiteGraph::new();
        for _ in 0..num_edges {
            let edge = Edge::new(dec.get_u32()?, dec.get_u32()?);
            if !graph.insert_edge(edge) {
                return Err(PersistError::Corrupt(
                    "duplicate edge in circuit edge list".into(),
                ));
            }
        }
        let num_views = dec.get_usize()?;
        if num_views != self.views.len() {
            return Err(PersistError::Corrupt(format!(
                "circuit snapshot holds {num_views} views, this circuit has {}",
                self.views.len()
            )));
        }
        // Stage the replacement views before mutating anything, so a corrupt
        // tail leaves the circuit untouched.
        let mut restored: Vec<Box<dyn DeltaView + Send>> = Vec::with_capacity(num_views);
        for view in &self.views {
            let name = dec.get_str()?;
            if name != view.name() {
                return Err(PersistError::Corrupt(format!(
                    "circuit snapshot lists view '{name}' where this circuit has '{}'",
                    view.name()
                )));
            }
            let payload = dec.get_bytes()?;
            let kind = ViewKind::parse(name).map_err(|_| {
                PersistError::Corrupt(format!("unknown view '{name}' in circuit snapshot"))
            })?;
            let replacement: Box<dyn DeltaView + Send> = match kind {
                ViewKind::Anomaly => {
                    let mut payload_dec = Decoder::new(payload);
                    let series = crate::persist::decode_series(&mut payload_dec)?;
                    payload_dec.expect_end()?;
                    Box::new(AnomalyView::from_series(series))
                }
                graph_kind => {
                    if !payload.is_empty() {
                        return Err(PersistError::Corrupt(format!(
                            "view '{name}' carries {} payload bytes, expected none",
                            payload.len()
                        )));
                    }
                    match graph_kind {
                        ViewKind::PerEdge => Box::new(PerEdgeView::from_graph(&graph)),
                        ViewKind::Vertex => Box::new(PerVertexView::from_graph(&graph)),
                        ViewKind::Clustering => Box::new(ClusteringView::from_graph(&graph)),
                        ViewKind::Bitruss => Box::new(BitrussView::from_graph(&graph)),
                        ViewKind::Anomaly => {
                            return Err(PersistError::Invariant(
                                "the anomaly arm above decodes this kind",
                            ))
                        }
                    }
                }
            };
            restored.push(replacement);
        }
        dec.expect_end()?;
        self.estimator.restore_state(inner)?;
        self.elements = elements;
        self.graph = graph;
        self.views = restored;
        self.scratch.clear();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Abacus, AbacusConfig, ExactCounter, WindowedMonitor};
    use abacus_graph::Edge;
    use abacus_graph::{
        bitruss_decomposition, butterfly_clustering_coefficient, EdgeSupports,
        VertexButterflyCounts,
    };
    use abacus_stream::StreamElement;

    fn scripted_stream() -> Vec<StreamElement> {
        let mut stream = Vec::new();
        // Build K_{3,3}, poke holes, refill — exercising inserts, deletes,
        // duplicate inserts, and deletes of absent edges.
        for l in 0..3u32 {
            for r in 10..13u32 {
                stream.push(StreamElement::insert(Edge::new(l, r)));
            }
        }
        stream.push(StreamElement::insert(Edge::new(0, 10))); // duplicate
        stream.push(StreamElement::delete(Edge::new(1, 11)));
        stream.push(StreamElement::delete(Edge::new(1, 11))); // absent
        stream.push(StreamElement::delete(Edge::new(2, 12)));
        stream.push(StreamElement::insert(Edge::new(1, 11))); // refill
        stream
    }

    #[test]
    fn kinds_round_trip_and_lists_parse() {
        for kind in ViewKind::ALL {
            assert_eq!(ViewKind::parse(kind.name()).unwrap(), kind);
            assert_eq!(kind.name().parse::<ViewKind>().unwrap(), kind);
            assert_eq!(kind.to_string(), kind.name());
            assert!(ViewKind::EXPECTED_NAMES.contains(kind.name()));
        }
        assert_eq!(
            ViewKind::parse_list("peredge, VERTEX ,peredge").unwrap(),
            vec![ViewKind::PerEdge, ViewKind::Vertex]
        );
        assert_eq!(ViewKind::parse_list("all").unwrap(), ViewKind::ALL.to_vec());
        assert_eq!(
            ViewKind::parse_list("peredge,nope").unwrap_err(),
            ViewKind::EXPECTED_NAMES
        );
    }

    #[test]
    fn parse_list_edge_cases_fail_closed_or_dedup() {
        // The empty string and blank entries are *errors*, not empty lists:
        // `--views ""` almost certainly meant to name something, and
        // silently subscribing nothing would hide the typo.
        assert_eq!(
            ViewKind::parse_list("").unwrap_err(),
            ViewKind::EXPECTED_NAMES
        );
        assert_eq!(
            ViewKind::parse_list("  ").unwrap_err(),
            ViewKind::EXPECTED_NAMES
        );
        // A trailing comma produces a blank entry and fails the same way.
        assert_eq!(
            ViewKind::parse_list("peredge,").unwrap_err(),
            ViewKind::EXPECTED_NAMES
        );
        assert_eq!(
            ViewKind::parse_list("peredge,,vertex").unwrap_err(),
            ViewKind::EXPECTED_NAMES
        );
        // `all` plus a duplicate named view collapses to the canonical list:
        // the named duplicate keeps its first (expansion-order) slot.
        assert_eq!(
            ViewKind::parse_list("all,vertex").unwrap(),
            ViewKind::ALL.to_vec()
        );
        assert_eq!(
            ViewKind::parse_list("vertex,all").unwrap(),
            vec![
                ViewKind::Vertex,
                ViewKind::PerEdge,
                ViewKind::Clustering,
                ViewKind::Bitruss,
                ViewKind::Anomaly,
            ]
        );
        // `all` twice is idempotent.
        assert_eq!(
            ViewKind::parse_list("all,all").unwrap(),
            ViewKind::ALL.to_vec()
        );
    }

    #[test]
    fn circuit_matches_every_offline_recomputation_on_a_scripted_stream() {
        let mut circuit = Circuit::new(ExactCounter::new());
        for kind in ViewKind::ALL {
            assert!(circuit.subscribe_view(kind.build()).is_ok());
        }
        for &element in &scripted_stream() {
            circuit.process(element);
        }
        circuit.finish();

        let graph = circuit.graph();
        let supports = &circuit.view_state::<PerEdgeView>().unwrap().supports();
        assert_eq!(**supports, EdgeSupports::recompute(graph));
        let counts = circuit.view_state::<PerVertexView>().unwrap().counts();
        assert_eq!(*counts, VertexButterflyCounts::recompute(graph));
        let clustering = circuit.view_state::<ClusteringView>().unwrap().state();
        assert_eq!(
            clustering.coefficient().to_bits(),
            butterfly_clustering_coefficient(graph).to_bits()
        );
        let bitruss = circuit.view_state::<BitrussView>().unwrap().state();
        assert_eq!(
            bitruss.decomposition(graph).tier_sizes(),
            bitruss_decomposition(graph).tier_sizes()
        );
        // The oracle estimator agrees with the circuit's own graph.
        assert_eq!(circuit.estimate(), counts.butterflies() as f64);
        assert_eq!(circuit.elements(), scripted_stream().len() as u64);
        // Every view produced a report line.
        let reports = circuit.view_reports();
        assert_eq!(reports.len(), ViewKind::ALL.len());
        assert!(reports.iter().all(|(_, lines)| !lines.is_empty()));
    }

    #[test]
    fn anomaly_view_matches_the_windowed_monitor_bit_for_bit() {
        // A *valid* stream (no duplicate inserts / absent deletes): the
        // sampling estimators assert stream validity, and the monitor parity
        // must hold on exactly the streams they accept.
        let mut stream = Vec::new();
        for l in 0..3u32 {
            for r in 10..13u32 {
                stream.push(StreamElement::insert(Edge::new(l, r)));
            }
        }
        stream.push(StreamElement::delete(Edge::new(1, 11)));
        stream.push(StreamElement::delete(Edge::new(2, 12)));
        stream.push(StreamElement::insert(Edge::new(1, 11)));
        let window = 4;

        let mut circuit = Circuit::new(Abacus::new(AbacusConfig::new(64).with_seed(9)))
            .with_view(Box::new(AnomalyView::new(window)));
        circuit.process_stream(&stream);

        let mut monitor =
            WindowedMonitor::new(Abacus::new(AbacusConfig::new(64).with_seed(9)), window);
        monitor.process_stream(&stream);
        monitor.snapshot_now();

        let view = circuit.view_state::<AnomalyView>().unwrap();
        assert_eq!(view.series().snapshots(), monitor.snapshots());
        assert!(!view.series().snapshots().is_empty());
    }

    #[test]
    fn unapplied_elements_leave_graph_views_untouched_but_count_for_anomaly() {
        let mut circuit = Circuit::new(ExactCounter::new())
            .with_view(ViewKind::PerEdge.build())
            .with_view(Box::new(AnomalyView::new(1)));
        circuit.process(StreamElement::insert(Edge::new(0, 10)));
        circuit.process(StreamElement::insert(Edge::new(0, 10))); // duplicate
        circuit.process(StreamElement::delete(Edge::new(5, 50))); // absent
        let supports = circuit.view_state::<PerEdgeView>().unwrap().supports();
        assert_eq!(supports.len(), 1, "only the applied insert is tracked");
        let series = circuit.view_state::<AnomalyView>().unwrap().series();
        assert_eq!(series.elements(), 3, "anomaly view sees every element");
        assert_eq!(circuit.graph().num_edges(), 1);
    }

    #[test]
    fn circuit_skips_enumeration_when_no_view_needs_it() {
        // An anomaly-only circuit must not pay for butterfly enumeration:
        // with `wants_pairs` false the scratch stays empty even on a dense
        // insert, which we can observe through a probe view subscribed later.
        struct PairProbe {
            pairs: usize,
        }
        impl DeltaView for PairProbe {
            fn name(&self) -> &'static str {
                "probe"
            }
            fn needs_butterflies(&self) -> bool {
                false
            }
            fn apply_delta(&mut self, event: &DeltaEvent<'_>) {
                self.pairs += event.butterflies.len();
            }
            fn report(&self, _graph: &BipartiteGraph) -> Vec<String> {
                Vec::new()
            }
            fn as_any(&self) -> &dyn std::any::Any {
                self
            }
        }
        let mut circuit =
            Circuit::new(ExactCounter::new()).with_view(Box::new(PairProbe { pairs: 0 }));
        for (l, r) in [(0, 10), (0, 11), (1, 10), (1, 11)] {
            circuit.process(StreamElement::insert(Edge::new(l, r)));
        }
        assert_eq!(circuit.view_state::<PairProbe>().unwrap().pairs, 0);
        assert_eq!(circuit.estimate(), 1.0, "the estimator still counts");
    }

    #[test]
    fn anomaly_only_circuits_skip_the_graph_replica() {
        // No subscribed view needs the graph, so the circuit should not pay
        // for replica maintenance — the graph stays empty, memory_edges
        // charges only the estimator, and the estimate is untouched.
        let mut circuit =
            Circuit::new(ExactCounter::new()).with_view(Box::new(AnomalyView::new(2)));
        for (l, r) in [(0, 10), (0, 11), (1, 10), (1, 11)] {
            circuit.process(StreamElement::insert(Edge::new(l, r)));
        }
        assert_eq!(
            circuit.graph().num_edges(),
            0,
            "replica maintenance skipped"
        );
        assert_eq!(circuit.estimate(), 1.0, "the estimator still counts");
        assert_eq!(circuit.memory_edges(), circuit.estimator().memory_edges());
        let series = circuit.view_state::<AnomalyView>().unwrap().series();
        assert_eq!(series.elements(), 4, "every element fans out as applied");
        // Subscribing a graph-needing view mid-stream flips maintenance on
        // for subsequent elements.
        circuit.add_view(ViewKind::PerEdge.build());
        circuit.process(StreamElement::insert(Edge::new(2, 12)));
        assert_eq!(circuit.graph().num_edges(), 1);
    }

    #[test]
    fn boxed_estimators_slot_into_the_circuit() {
        use crate::engine::EstimatorSpec;
        let mut circuit: Circuit<Box<dyn ButterflyCounter + Send>> =
            Circuit::new(EstimatorSpec::exact().build());
        circuit.add_view(ViewKind::Vertex.build());
        for (l, r) in [(0, 10), (0, 11), (1, 10), (1, 11)] {
            circuit.process(StreamElement::insert(Edge::new(l, r)));
        }
        assert_eq!(circuit.name(), "EXACT");
        assert_eq!(circuit.estimate(), 1.0);
        assert_eq!(
            circuit.memory_edges(),
            circuit.estimator().memory_edges() + 4
        );
        let counts = circuit.view_state::<PerVertexView>().unwrap().counts();
        assert_eq!(counts.butterflies(), 1);
    }
}
