//! The built-in [`DeltaView`] implementations the circuit registry offers.
//!
//! Each view is a thin adapter folding [`DeltaEvent`]s into one of the
//! delta-maintained states in `abacus-graph` (or, for the anomaly view, the
//! windowed series in `abacus-metrics`).  The states own the incremental
//! arithmetic and its bit-parity contract with offline recomputation; the
//! adapters own the event plumbing — which events to ignore, which side of
//! the enumeration to feed where, and how to phrase a report line.

use abacus_graph::{
    BipartiteGraph, BitrussState, ClusteringState, EdgeSupports, Side, VertexButterflyCounts,
};
use abacus_metrics::AnomalySeries;
use abacus_stream::{DeltaEvent, DeltaView};
use std::any::Any;

/// Snapshot cadence (in stream elements) of an [`AnomalyView`] built through
/// the registry ([`ViewKind::build`](crate::circuit::ViewKind::build)).
pub const DEFAULT_ANOMALY_WINDOW: usize = 1_024;

/// Live per-edge butterfly supports (view `peredge`).
///
/// Maintains [`EdgeSupports`] — the support of every live edge, the input to
/// bitruss peeling — and bit-matches `abacus_graph::bitruss::edge_supports`
/// on the circuit's graph at every element.
#[derive(Debug, Default)]
pub struct PerEdgeView {
    supports: EdgeSupports,
}

impl PerEdgeView {
    /// An empty per-edge view.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A view recomputed offline from `graph` — the restore path after
    /// recovery, exact by the view's own parity contract.
    #[must_use]
    pub fn from_graph(graph: &BipartiteGraph) -> Self {
        PerEdgeView {
            supports: EdgeSupports::recompute(graph),
        }
    }

    /// The maintained edge → support map.
    #[must_use]
    pub fn supports(&self) -> &EdgeSupports {
        &self.supports
    }
}

impl DeltaView for PerEdgeView {
    fn name(&self) -> &'static str {
        "peredge"
    }

    fn apply_delta(&mut self, event: &DeltaEvent<'_>) {
        if !event.applied {
            return;
        }
        if event.element.delta.is_insert() {
            self.supports
                .apply_insert(event.element.edge, event.butterflies);
        } else {
            self.supports
                .apply_delete(event.element.edge, event.butterflies);
        }
    }

    fn report(&self, _graph: &BipartiteGraph) -> Vec<String> {
        let peak = self.supports.max_support().map_or_else(
            || "-".to_string(),
            |(e, s)| format!("{s} on ({}, {})", e.left, e.right),
        );
        vec![format!(
            "{} live edges, total support {}, max support {peak}",
            self.supports.len(),
            self.supports.total_support(),
        )]
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Live per-vertex butterfly counts (view `vertex`).
///
/// Maintains [`VertexButterflyCounts`] and bit-matches
/// `count_butterflies_per_side_vertex` on both partitions.
#[derive(Debug, Default)]
pub struct PerVertexView {
    counts: VertexButterflyCounts,
}

impl PerVertexView {
    /// An empty per-vertex view.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A view recomputed offline from `graph` (the restore path).
    #[must_use]
    pub fn from_graph(graph: &BipartiteGraph) -> Self {
        PerVertexView {
            counts: VertexButterflyCounts::recompute(graph),
        }
    }

    /// The maintained per-vertex counts.
    #[must_use]
    pub fn counts(&self) -> &VertexButterflyCounts {
        &self.counts
    }
}

impl DeltaView for PerVertexView {
    fn name(&self) -> &'static str {
        "vertex"
    }

    fn apply_delta(&mut self, event: &DeltaEvent<'_>) {
        if !event.applied {
            return;
        }
        if event.element.delta.is_insert() {
            self.counts
                .apply_insert(event.element.edge, event.butterflies);
        } else {
            self.counts
                .apply_delete(event.element.edge, event.butterflies);
        }
    }

    fn report(&self, _graph: &BipartiteGraph) -> Vec<String> {
        let hot = |side: Side| {
            self.counts
                .max_vertex(side)
                .map_or_else(|| "-".to_string(), |(id, c)| format!("{side}{id} ({c})"))
        };
        vec![format!(
            "{} butterflies, hottest left {}, hottest right {}",
            self.counts.butterflies(),
            hot(Side::Left),
            hot(Side::Right),
        )]
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Live butterfly clustering coefficient (view `clustering`).
///
/// Maintains [`ClusteringState`] (exact butterfly and caterpillar totals);
/// its `coefficient()` bit-matches `butterfly_clustering_coefficient`.
#[derive(Debug, Default)]
pub struct ClusteringView {
    state: ClusteringState,
}

impl ClusteringView {
    /// An empty clustering view.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A view recomputed offline from `graph` (the restore path).
    #[must_use]
    pub fn from_graph(graph: &BipartiteGraph) -> Self {
        ClusteringView {
            state: ClusteringState::recompute(graph),
        }
    }

    /// The maintained butterfly / caterpillar totals.
    #[must_use]
    pub fn state(&self) -> &ClusteringState {
        &self.state
    }
}

impl DeltaView for ClusteringView {
    fn name(&self) -> &'static str {
        "clustering"
    }

    fn apply_delta(&mut self, event: &DeltaEvent<'_>) {
        if !event.applied {
            return;
        }
        let wings = event.butterflies.len() as u64;
        if event.element.delta.is_insert() {
            self.state
                .apply_insert(event.graph, event.element.edge, wings);
        } else {
            self.state
                .apply_delete(event.graph, event.element.edge, wings);
        }
    }

    fn report(&self, _graph: &BipartiteGraph) -> Vec<String> {
        vec![format!(
            "coefficient {:.6} ({} butterflies / {} caterpillars)",
            self.state.coefficient(),
            self.state.butterflies(),
            self.state.caterpillars(),
        )]
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Live bitruss-tier membership (view `bitruss`).
///
/// Maintains the per-edge supports incrementally ([`BitrussState`]); the
/// decomposition itself is peeled on demand at report time, which is the
/// expensive part the incremental supports make cheap to refresh.
#[derive(Debug, Default)]
pub struct BitrussView {
    state: BitrussState,
}

impl BitrussView {
    /// An empty bitruss view.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A view recomputed offline from `graph` (the restore path).
    #[must_use]
    pub fn from_graph(graph: &BipartiteGraph) -> Self {
        BitrussView {
            state: BitrussState::recompute(graph),
        }
    }

    /// The maintained support state.
    #[must_use]
    pub fn state(&self) -> &BitrussState {
        &self.state
    }
}

impl DeltaView for BitrussView {
    fn name(&self) -> &'static str {
        "bitruss"
    }

    fn apply_delta(&mut self, event: &DeltaEvent<'_>) {
        if !event.applied {
            return;
        }
        if event.element.delta.is_insert() {
            self.state
                .apply_insert(event.element.edge, event.butterflies);
        } else {
            self.state
                .apply_delete(event.element.edge, event.butterflies);
        }
    }

    fn report(&self, graph: &BipartiteGraph) -> Vec<String> {
        let decomposition = self.state.decomposition(graph);
        let tiers = decomposition.tier_sizes();
        let top = tiers.last().map_or_else(
            || "-".to_string(),
            |&(k, n)| format!("{k}-bitruss ({n} edges)"),
        );
        vec![format!("{} tiers, innermost {top}", tiers.len())]
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Windowed estimate series with burst detection (view `anomaly`).
///
/// Feeds the hosting estimator's running estimate into an [`AnomalySeries`]
/// — the same state behind [`WindowedMonitor`](crate::monitor::WindowedMonitor)
/// — so registering this view on a circuit produces bit-identical snapshots
/// to wrapping the same estimator in a monitor.  Unlike the graph-derived
/// views it observes *every* stream element (duplicate inserts and absent
/// deletes included), keeping its windows element-aligned with the monitor.
#[derive(Debug)]
pub struct AnomalyView {
    series: AnomalySeries,
}

impl AnomalyView {
    /// A view that snapshots every `window` elements.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        AnomalyView {
            series: AnomalySeries::new(window),
        }
    }

    /// Sets the burst-detection factor (see
    /// [`AnomalySeries::with_burst_factor`]).
    #[must_use]
    pub fn with_burst_factor(mut self, factor: f64) -> Self {
        self.series = self.series.with_burst_factor(factor);
        self
    }

    /// The recorded windowed series.
    #[must_use]
    pub fn series(&self) -> &AnomalySeries {
        &self.series
    }

    /// A view resuming a previously recorded series (the restore path —
    /// unlike the graph-derived views this one's state is pure history and
    /// cannot be recomputed, so it is carried in the snapshot).
    #[must_use]
    pub fn from_series(series: AnomalySeries) -> Self {
        AnomalyView { series }
    }
}

impl Default for AnomalyView {
    fn default() -> Self {
        AnomalyView::new(DEFAULT_ANOMALY_WINDOW)
    }
}

impl DeltaView for AnomalyView {
    fn name(&self) -> &'static str {
        "anomaly"
    }

    fn needs_butterflies(&self) -> bool {
        false
    }

    fn needs_graph(&self) -> bool {
        false
    }

    fn apply_delta(&mut self, event: &DeltaEvent<'_>) {
        self.series.observe(event.estimate);
    }

    fn finish(&mut self, estimate: f64) {
        self.series.force_snapshot(estimate);
    }

    fn report(&self, _graph: &BipartiteGraph) -> Vec<String> {
        let anomalies = self.series.anomalous_windows();
        let last = self
            .series
            .snapshots()
            .last()
            .map_or_else(|| "-".to_string(), |s| format!("{:.1}", s.estimate));
        vec![format!(
            "{} windows of {}, {} anomalous, last estimate {last}",
            self.series.snapshots().len(),
            self.series.window(),
            anomalies.len(),
        )]
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
