//! Windowed monitoring of a streaming butterfly estimate.
//!
//! Streaming deployments rarely want only the final count: anomaly detectors
//! (§I of the paper) watch how the butterfly count *evolves* and alert when a
//! window's change is abnormal.  [`WindowedMonitor`] wraps any
//! [`ButterflyCounter`] and feeds its estimate into an
//! [`AnomalySeries`] — the estimator-agnostic
//! windowed series in `abacus-metrics` that records a snapshot every `window`
//! elements and runs the burst detector.  The same series type backs the
//! delta circuit's anomaly view (`abacus_core::circuit::AnomalyView`), so the
//! wrapper and the view produce bit-identical snapshots over the same
//! estimate sequence.  The latest estimate is also published through a
//! [`SharedEstimate`] handle (a `parking_lot`-guarded cell) so dashboards or
//! detector threads can read it without touching the estimator itself.

use crate::counter::ButterflyCounter;
use abacus_metrics::AnomalySeries;
use abacus_stream::StreamElement;
use parking_lot::RwLock;
use std::sync::Arc;

pub use abacus_metrics::WindowSnapshot;

/// A cheap, cloneable handle to the most recent published estimate.
#[derive(Debug, Clone, Default)]
pub struct SharedEstimate {
    inner: Arc<RwLock<f64>>,
}

impl SharedEstimate {
    /// Creates a handle initialised to zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the last published estimate.
    #[must_use]
    pub fn get(&self) -> f64 {
        *self.inner.read()
    }

    fn publish(&self, value: f64) {
        *self.inner.write() = value;
    }
}

/// Wraps an estimator and records its estimate once per window of stream
/// elements.
#[derive(Debug)]
pub struct WindowedMonitor<C: ButterflyCounter> {
    counter: C,
    series: AnomalySeries,
    shared: SharedEstimate,
}

impl<C: ButterflyCounter> WindowedMonitor<C> {
    /// Creates a monitor that snapshots every `window` elements.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(counter: C, window: usize) -> Self {
        WindowedMonitor {
            counter,
            series: AnomalySeries::new(window),
            shared: SharedEstimate::new(),
        }
    }

    /// Sets the burst-detection factor (a window is anomalous when its
    /// absolute delta exceeds `factor ×` the mean absolute delta of the
    /// preceding windows).  Default: 8.
    #[must_use]
    pub fn with_burst_factor(mut self, factor: f64) -> Self {
        self.series = self.series.with_burst_factor(factor);
        self
    }

    /// A cloneable handle to the latest published estimate.
    #[must_use]
    pub fn shared_estimate(&self) -> SharedEstimate {
        self.shared.clone()
    }

    /// The recorded window snapshots.
    #[must_use]
    pub fn snapshots(&self) -> &[WindowSnapshot] {
        self.series.snapshots()
    }

    /// The wrapped estimator.
    #[must_use]
    pub fn counter(&self) -> &C {
        &self.counter
    }

    /// Consumes the monitor and returns the wrapped estimator.
    #[must_use]
    pub fn into_counter(self) -> C {
        self.counter
    }

    /// Windows whose estimate change is anomalously large compared to the
    /// trailing history — see
    /// [`AnomalySeries::anomalous_windows`](abacus_metrics::AnomalySeries::anomalous_windows)
    /// for the detector's baseline and noise-floor rules.
    #[must_use]
    pub fn anomalous_windows(&self) -> Vec<WindowSnapshot> {
        self.series.anomalous_windows()
    }

    /// Forces a snapshot of the current partial window.
    ///
    /// A no-op when the current window is empty *and* the estimate has not
    /// moved (see
    /// [`AnomalySeries::force_snapshot`](abacus_metrics::AnomalySeries::force_snapshot));
    /// an empty window whose estimate *did* change (a buffered counter like
    /// PARABACUS flushing on [`finish`](ButterflyCounter::finish)) is still
    /// recorded, so the flushed value reaches the series and the
    /// [`SharedEstimate`] handle.
    pub fn snapshot_now(&mut self) {
        if let Some(snapshot) = self.series.force_snapshot(self.counter.estimate()) {
            self.shared.publish(snapshot.estimate);
        }
    }
}

impl<C: ButterflyCounter> ButterflyCounter for WindowedMonitor<C> {
    fn process(&mut self, element: StreamElement) {
        self.counter.process(element);
        if let Some(snapshot) = self.series.observe(self.counter.estimate()) {
            self.shared.publish(snapshot.estimate);
        }
    }

    fn estimate(&self) -> f64 {
        self.counter.estimate()
    }

    fn finish(&mut self) -> f64 {
        // Forward so buffered estimators (PARABACUS) flush through the
        // monitor; windows stay element-aligned since `process` already ran.
        self.counter.finish()
    }

    fn preferred_chunk(&self) -> usize {
        self.counter.preferred_chunk()
    }

    fn memory_edges(&self) -> usize {
        self.counter.memory_edges()
    }

    fn name(&self) -> &'static str {
        self.counter.name()
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        self.counter.as_any()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abacus::Abacus;
    use crate::config::AbacusConfig;
    use abacus_graph::Edge;

    fn biclique_stream(lefts: u32, rights: u32) -> Vec<StreamElement> {
        let mut out = Vec::new();
        for l in 0..lefts {
            for r in 0..rights {
                out.push(StreamElement::insert(Edge::new(l, 1_000 + r)));
            }
        }
        out
    }

    #[test]
    fn snapshots_are_taken_per_window() {
        let abacus = Abacus::new(AbacusConfig::new(1_000).with_seed(0));
        let mut monitor = WindowedMonitor::new(abacus, 10);
        let stream = biclique_stream(5, 8); // 40 elements
        monitor.process_stream(&stream);
        assert_eq!(monitor.snapshots().len(), 4);
        assert_eq!(monitor.snapshots()[3].elements, 40);
        // Estimates are non-decreasing for an insert-only stream with a
        // covering budget, and the final one matches the wrapped counter.
        assert!(monitor
            .snapshots()
            .windows(2)
            .all(|w| w[1].estimate >= w[0].estimate));
        assert_eq!(
            monitor.snapshots().last().unwrap().estimate,
            monitor.estimate()
        );
        assert_eq!(monitor.name(), "ABACUS");
        assert!(monitor.memory_edges() <= 1_000);
    }

    #[test]
    fn shared_estimate_tracks_published_windows() {
        let abacus = Abacus::new(AbacusConfig::new(1_000).with_seed(0));
        let mut monitor = WindowedMonitor::new(abacus, 5);
        let handle = monitor.shared_estimate();
        assert_eq!(handle.get(), 0.0);
        monitor.process_stream(&biclique_stream(4, 5)); // 20 elements, 4 windows
        assert_eq!(handle.get(), monitor.estimate());
        // Handles are clones of the same cell.
        let another = monitor.shared_estimate();
        assert_eq!(another.get(), handle.get());
    }

    #[test]
    fn partial_windows_can_be_snapshotted_manually() {
        let abacus = Abacus::new(AbacusConfig::new(100).with_seed(0));
        let mut monitor = WindowedMonitor::new(abacus, 1_000);
        monitor.process_stream(&biclique_stream(3, 3));
        assert!(monitor.snapshots().is_empty());
        monitor.snapshot_now();
        assert_eq!(monitor.snapshots().len(), 1);
        assert_eq!(monitor.snapshots()[0].elements, 9);
        let inner = monitor.into_counter();
        assert_eq!(inner.estimate(), 9.0); // K_{3,3} has 9 butterflies
    }

    #[test]
    fn burst_detector_flags_a_planted_spike() {
        let abacus = Abacus::new(AbacusConfig::new(10_000).with_seed(0));
        let mut monitor = WindowedMonitor::new(abacus, 50).with_burst_factor(5.0);
        // Quiet background: star edges that never form butterflies.
        let mut stream = Vec::new();
        for i in 0..500u32 {
            stream.push(StreamElement::insert(Edge::new(i, i)));
        }
        // Spike: a dense biclique (64 edges, i.e. more than one full window)
        // arrives right after the quiet phase.
        for l in 0..8u32 {
            for r in 0..8u32 {
                stream.push(StreamElement::insert(Edge::new(10_000 + l, 20_000 + r)));
            }
        }
        monitor.process_stream(&stream);
        monitor.snapshot_now();
        let anomalies = monitor.anomalous_windows();
        assert!(
            !anomalies.is_empty(),
            "the biclique burst must be flagged as anomalous"
        );
        assert!(anomalies.iter().all(|w| w.window >= 10));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let abacus = Abacus::new(AbacusConfig::new(10));
        let _ = WindowedMonitor::new(abacus, 0);
    }

    /// Regression (follow-up to the empty-window no-op): a *buffered*
    /// counter's flush happens in `finish`, after the last boundary
    /// snapshot.  The forced snapshot that makes the flushed estimate
    /// visible must not be swallowed by the empty-window guard.
    #[test]
    fn forced_snapshot_records_a_flush_that_moved_the_estimate() {
        use crate::parabacus::ParAbacus;
        let inner = ParAbacus::new(
            crate::config::ParAbacusConfig::new(1_000)
                .with_seed(0)
                .with_batch_size(1_000) // larger than the stream: all buffered
                .with_threads(2),
        );
        let mut monitor = WindowedMonitor::new(inner, 10);
        let handle = monitor.shared_estimate();
        monitor.process_stream(&biclique_stream(5, 8)); // 40 elements, 4 windows
                                                        // Boundary snapshots saw the unflushed (zero) estimate; the
                                                        // process_stream driver's finish() then flushed the batch.
        assert_eq!(monitor.snapshots().len(), 4);
        assert_eq!(monitor.snapshots()[3].estimate, 0.0);
        let flushed = monitor.estimate();
        assert!(flushed > 0.0, "finish must have flushed the batch");
        monitor.snapshot_now();
        assert_eq!(monitor.snapshots().len(), 5, "the flush must be recordable");
        assert_eq!(monitor.snapshots()[4].estimate, flushed);
        assert_eq!(monitor.snapshots()[4].elements, 40);
        assert_eq!(handle.get(), flushed);
        // Once recorded, repeating the forced snapshot is a no-op again.
        monitor.snapshot_now();
        assert_eq!(monitor.snapshots().len(), 5);
    }

    /// A counter whose estimate grows by `left / 1000` per element, so tests
    /// can script arbitrary per-window deltas through the stream itself.
    struct ScriptedCounter {
        estimate: f64,
    }

    impl ButterflyCounter for ScriptedCounter {
        fn process(&mut self, element: StreamElement) {
            self.estimate += f64::from(element.edge.left) / 1000.0;
        }
        fn estimate(&self) -> f64 {
            self.estimate
        }
        fn memory_edges(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "scripted"
        }
    }

    /// Regression: the old detector floored the baseline at an absolute 1.0
    /// butterfly, so a stream whose per-window deltas are all far below one
    /// butterfly could never alert regardless of how extreme a burst was
    /// relative to its own history.
    #[test]
    fn sub_unit_delta_streams_can_alert() {
        let mut monitor =
            WindowedMonitor::new(ScriptedCounter { estimate: 0.0 }, 10).with_burst_factor(8.0);
        let mut stream = Vec::new();
        // Quiet background: delta 0.01 per 10-element window.
        for i in 0..100u32 {
            stream.push(StreamElement::insert(Edge::new(1, i)));
        }
        // Burst: delta 0.5 for one window — 50x the trailing mean, yet half
        // a butterfly in absolute terms.
        for i in 0..10u32 {
            stream.push(StreamElement::insert(Edge::new(50, 1_000 + i)));
        }
        monitor.process_stream(&stream);
        let anomalies = monitor.anomalous_windows();
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert_eq!(anomalies[0].window, 10);
    }

    /// Regression: the old detector used window 0's own delta as its
    /// baseline, so a burst arriving in the very first window was
    /// structurally unflaggable.  The warm-up baseline (series median)
    /// restores it.
    #[test]
    fn a_spike_in_the_first_window_is_flaggable() {
        let mut monitor =
            WindowedMonitor::new(ScriptedCounter { estimate: 0.0 }, 10).with_burst_factor(5.0);
        let mut stream = Vec::new();
        for i in 0..10u32 {
            stream.push(StreamElement::insert(Edge::new(800, i))); // window 0: delta 8
        }
        for i in 0..80u32 {
            stream.push(StreamElement::insert(Edge::new(1, 100 + i))); // quiet
        }
        monitor.process_stream(&stream);
        let anomalies = monitor.anomalous_windows();
        assert_eq!(anomalies.len(), 1, "{anomalies:?}");
        assert_eq!(anomalies[0].window, 0);
    }

    /// A flat series must stay quiet: every window matches the warm-up
    /// median and the trailing mean exactly.
    #[test]
    fn uniform_series_raises_no_anomalies() {
        let mut monitor = WindowedMonitor::new(ScriptedCounter { estimate: 0.0 }, 10);
        let stream: Vec<StreamElement> = (0..120u32)
            .map(|i| StreamElement::insert(Edge::new(5, i)))
            .collect();
        monitor.process_stream(&stream);
        assert!(monitor.anomalous_windows().is_empty());
    }

    /// Regression: a forced snapshot right after a stream whose length is an
    /// exact multiple of the window used to record a duplicate zero-delta
    /// window, deflating the trailing mean of the burst detector.
    #[test]
    fn forced_snapshots_of_empty_windows_are_no_ops() {
        let abacus = Abacus::new(AbacusConfig::new(1_000).with_seed(0));
        let mut monitor = WindowedMonitor::new(abacus, 10);
        monitor.process_stream(&biclique_stream(5, 8)); // 40 elements: 4 windows
        assert_eq!(monitor.snapshots().len(), 4);
        monitor.snapshot_now();
        assert_eq!(
            monitor.snapshots().len(),
            4,
            "empty forced snapshot must not append a duplicate window"
        );
        // A brand-new monitor with nothing processed records nothing either.
        let mut empty = WindowedMonitor::new(Abacus::new(AbacusConfig::new(10)), 5);
        empty.snapshot_now();
        assert!(empty.snapshots().is_empty());
        // A genuine partial window still snapshots (and only once).
        monitor.process(StreamElement::insert(Edge::new(99, 1_099)));
        monitor.snapshot_now();
        monitor.snapshot_now();
        assert_eq!(monitor.snapshots().len(), 5);
        assert_eq!(monitor.snapshots()[4].elements, 41);
    }
}
