//! Windowed monitoring of a streaming butterfly estimate.
//!
//! Streaming deployments rarely want only the final count: anomaly detectors
//! (§I of the paper) watch how the butterfly count *evolves* and alert when a
//! window's change is abnormal.  [`WindowedMonitor`] wraps any
//! [`ButterflyCounter`], snapshots its estimate every `window` elements, and
//! keeps the series plus a simple burst detector.  The latest estimate is also
//! published through a [`SharedEstimate`] handle (a `parking_lot`-guarded
//! cell) so dashboards or detector threads can read it without touching the
//! estimator itself.

use crate::counter::ButterflyCounter;
use abacus_stream::StreamElement;
use parking_lot::RwLock;
use std::sync::Arc;

/// A cheap, cloneable handle to the most recent published estimate.
#[derive(Debug, Clone, Default)]
pub struct SharedEstimate {
    inner: Arc<RwLock<f64>>,
}

impl SharedEstimate {
    /// Creates a handle initialised to zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads the last published estimate.
    #[must_use]
    pub fn get(&self) -> f64 {
        *self.inner.read()
    }

    fn publish(&self, value: f64) {
        *self.inner.write() = value;
    }
}

/// One recorded window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowSnapshot {
    /// Index of the window (0-based).
    pub window: usize,
    /// Number of stream elements processed up to and including this window.
    pub elements: u64,
    /// Estimate at the end of the window.
    pub estimate: f64,
    /// Change of the estimate relative to the previous window.
    pub delta: f64,
}

/// Wraps an estimator and records its estimate once per window of stream
/// elements.
#[derive(Debug)]
pub struct WindowedMonitor<C: ButterflyCounter> {
    counter: C,
    window: usize,
    in_window: usize,
    elements: u64,
    snapshots: Vec<WindowSnapshot>,
    shared: SharedEstimate,
    burst_factor: f64,
}

impl<C: ButterflyCounter> WindowedMonitor<C> {
    /// Creates a monitor that snapshots every `window` elements.
    ///
    /// # Panics
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(counter: C, window: usize) -> Self {
        assert!(window >= 1, "window must contain at least one element");
        WindowedMonitor {
            counter,
            window,
            in_window: 0,
            elements: 0,
            snapshots: Vec::new(),
            shared: SharedEstimate::new(),
            burst_factor: 8.0,
        }
    }

    /// Sets the burst-detection factor (a window is anomalous when its
    /// absolute delta exceeds `factor ×` the mean absolute delta of the
    /// preceding windows).  Default: 8.
    #[must_use]
    pub fn with_burst_factor(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "burst factor must be positive");
        self.burst_factor = factor;
        self
    }

    /// A cloneable handle to the latest published estimate.
    #[must_use]
    pub fn shared_estimate(&self) -> SharedEstimate {
        self.shared.clone()
    }

    /// The recorded window snapshots.
    #[must_use]
    pub fn snapshots(&self) -> &[WindowSnapshot] {
        &self.snapshots
    }

    /// The wrapped estimator.
    #[must_use]
    pub fn counter(&self) -> &C {
        &self.counter
    }

    /// Consumes the monitor and returns the wrapped estimator.
    #[must_use]
    pub fn into_counter(self) -> C {
        self.counter
    }

    /// Windows whose estimate change is anomalously large compared to the
    /// trailing history.
    #[must_use]
    pub fn anomalous_windows(&self) -> Vec<WindowSnapshot> {
        let mut anomalies = Vec::new();
        let mut trailing: Vec<f64> = Vec::new();
        for snapshot in &self.snapshots {
            let baseline = if trailing.is_empty() {
                snapshot.delta.abs()
            } else {
                trailing.iter().sum::<f64>() / trailing.len() as f64
            };
            if snapshot.delta.abs() > self.burst_factor * baseline.max(1.0) {
                anomalies.push(*snapshot);
            }
            trailing.push(snapshot.delta.abs());
            if trailing.len() > 8 {
                trailing.remove(0);
            }
        }
        anomalies
    }

    /// Forces a snapshot of the current (possibly partial) window.
    pub fn snapshot_now(&mut self) {
        let estimate = self.counter.estimate();
        let previous = self.snapshots.last().map_or(0.0, |s| s.estimate);
        self.snapshots.push(WindowSnapshot {
            window: self.snapshots.len(),
            elements: self.elements,
            estimate,
            delta: estimate - previous,
        });
        self.shared.publish(estimate);
        self.in_window = 0;
    }
}

impl<C: ButterflyCounter> ButterflyCounter for WindowedMonitor<C> {
    fn process(&mut self, element: StreamElement) {
        self.counter.process(element);
        self.elements += 1;
        self.in_window += 1;
        if self.in_window >= self.window {
            self.snapshot_now();
        }
    }

    fn estimate(&self) -> f64 {
        self.counter.estimate()
    }

    fn memory_edges(&self) -> usize {
        self.counter.memory_edges()
    }

    fn name(&self) -> &'static str {
        self.counter.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abacus::Abacus;
    use crate::config::AbacusConfig;
    use abacus_graph::Edge;

    fn biclique_stream(lefts: u32, rights: u32) -> Vec<StreamElement> {
        let mut out = Vec::new();
        for l in 0..lefts {
            for r in 0..rights {
                out.push(StreamElement::insert(Edge::new(l, 1_000 + r)));
            }
        }
        out
    }

    #[test]
    fn snapshots_are_taken_per_window() {
        let abacus = Abacus::new(AbacusConfig::new(1_000).with_seed(0));
        let mut monitor = WindowedMonitor::new(abacus, 10);
        let stream = biclique_stream(5, 8); // 40 elements
        monitor.process_stream(&stream);
        assert_eq!(monitor.snapshots().len(), 4);
        assert_eq!(monitor.snapshots()[3].elements, 40);
        // Estimates are non-decreasing for an insert-only stream with a
        // covering budget, and the final one matches the wrapped counter.
        assert!(monitor
            .snapshots()
            .windows(2)
            .all(|w| w[1].estimate >= w[0].estimate));
        assert_eq!(
            monitor.snapshots().last().unwrap().estimate,
            monitor.estimate()
        );
        assert_eq!(monitor.name(), "ABACUS");
        assert!(monitor.memory_edges() <= 1_000);
    }

    #[test]
    fn shared_estimate_tracks_published_windows() {
        let abacus = Abacus::new(AbacusConfig::new(1_000).with_seed(0));
        let mut monitor = WindowedMonitor::new(abacus, 5);
        let handle = monitor.shared_estimate();
        assert_eq!(handle.get(), 0.0);
        monitor.process_stream(&biclique_stream(4, 5)); // 20 elements, 4 windows
        assert_eq!(handle.get(), monitor.estimate());
        // Handles are clones of the same cell.
        let another = monitor.shared_estimate();
        assert_eq!(another.get(), handle.get());
    }

    #[test]
    fn partial_windows_can_be_snapshotted_manually() {
        let abacus = Abacus::new(AbacusConfig::new(100).with_seed(0));
        let mut monitor = WindowedMonitor::new(abacus, 1_000);
        monitor.process_stream(&biclique_stream(3, 3));
        assert!(monitor.snapshots().is_empty());
        monitor.snapshot_now();
        assert_eq!(monitor.snapshots().len(), 1);
        assert_eq!(monitor.snapshots()[0].elements, 9);
        let inner = monitor.into_counter();
        assert_eq!(inner.estimate(), 9.0); // K_{3,3} has 9 butterflies
    }

    #[test]
    fn burst_detector_flags_a_planted_spike() {
        let abacus = Abacus::new(AbacusConfig::new(10_000).with_seed(0));
        let mut monitor = WindowedMonitor::new(abacus, 50).with_burst_factor(5.0);
        // Quiet background: star edges that never form butterflies.
        let mut stream = Vec::new();
        for i in 0..500u32 {
            stream.push(StreamElement::insert(Edge::new(i, i)));
        }
        // Spike: a dense biclique (64 edges, i.e. more than one full window)
        // arrives right after the quiet phase.
        for l in 0..8u32 {
            for r in 0..8u32 {
                stream.push(StreamElement::insert(Edge::new(10_000 + l, 20_000 + r)));
            }
        }
        monitor.process_stream(&stream);
        monitor.snapshot_now();
        let anomalies = monitor.anomalous_windows();
        assert!(
            !anomalies.is_empty(),
            "the biclique burst must be flagged as anomalous"
        );
        assert!(anomalies.iter().all(|w| w.window >= 10));
    }

    #[test]
    #[should_panic(expected = "window")]
    fn zero_window_panics() {
        let abacus = Abacus::new(AbacusConfig::new(10));
        let _ = WindowedMonitor::new(abacus, 0);
    }
}
