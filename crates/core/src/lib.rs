//! # abacus-core
//!
//! The paper's primary contribution: **ABACUS**, a streaming estimator of the
//! global butterfly count of a *fully dynamic* bipartite graph stream, and
//! **PARABACUS**, its mini-batch parallel variant.
//!
//! ```
//! use abacus_core::{Abacus, AbacusConfig, ButterflyCounter};
//! use abacus_stream::StreamElement;
//! use abacus_graph::Edge;
//!
//! // Estimate butterflies over a small fully dynamic stream.
//! let mut abacus = Abacus::new(AbacusConfig::new(64).with_seed(7));
//! abacus.process(StreamElement::insert(Edge::new(0, 10)));
//! abacus.process(StreamElement::insert(Edge::new(0, 11)));
//! abacus.process(StreamElement::insert(Edge::new(1, 10)));
//! abacus.process(StreamElement::insert(Edge::new(1, 11)));
//! assert_eq!(abacus.estimate(), 1.0); // sample holds the whole graph: exact
//! abacus.process(StreamElement::delete(Edge::new(1, 11)));
//! assert_eq!(abacus.estimate(), 0.0);
//! ```
//!
//! Modules:
//!
//! * [`config`] — estimator configuration (memory budget, seed, batching),
//! * [`counter`] — the [`ButterflyCounter`] trait shared by every estimator
//!   in the workspace (ABACUS, PARABACUS, the exact oracle, FLEET, CAS),
//! * [`sample_graph`] — the bounded sample stored as a bipartite graph,
//! * [`snapshot`] — glue keeping the frozen CSR counting snapshot
//!   (`abacus_graph::csr`) in lock-step with the sample,
//! * [`probability`] — the butterfly-discovery probability of Eq. 1 and the
//!   reciprocal-increment rule,
//! * [`abacus`] — Algorithm 1,
//! * [`exact`] — the exact streaming oracle (unbounded memory, ground truth),
//! * [`parabacus`] — mini-batch parallel processing with versioned samples
//!   and a two-stage pipelined engine that overlaps sample-version creation
//!   with counting,
//! * [`stats`] — per-run processing statistics (work counters, discoveries).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abacus;
pub mod config;
pub mod counter;
pub mod exact;
pub mod local;
pub mod monitor;
pub mod parabacus;
pub mod probability;
pub mod sample_graph;
pub mod snapshot;
pub mod stats;

pub use abacus::Abacus;
pub use config::{AbacusConfig, ParAbacusConfig, SnapshotMode, AUTO_SNAPSHOT_MIN_BUDGET};
pub use counter::ButterflyCounter;
pub use exact::ExactCounter;
pub use local::LocalAbacus;
pub use monitor::{SharedEstimate, WindowedMonitor};
pub use parabacus::{ParAbacus, PhaseTimings};
pub use probability::{discovery_probability, increment, variance_upper_bound};
pub use sample_graph::SampleGraph;
pub use stats::ProcessingStats;
