//! # abacus-core
//!
//! The paper's primary contribution: **ABACUS**, a streaming estimator of the
//! global butterfly count of a *fully dynamic* bipartite graph stream, and
//! **PARABACUS**, its mini-batch parallel variant.
//!
//! ```
//! use abacus_core::{Abacus, AbacusConfig, ButterflyCounter};
//! use abacus_stream::StreamElement;
//! use abacus_graph::Edge;
//!
//! // Estimate butterflies over a small fully dynamic stream.
//! let mut abacus = Abacus::new(AbacusConfig::new(64).with_seed(7));
//! abacus.process(StreamElement::insert(Edge::new(0, 10)));
//! abacus.process(StreamElement::insert(Edge::new(0, 11)));
//! abacus.process(StreamElement::insert(Edge::new(1, 10)));
//! abacus.process(StreamElement::insert(Edge::new(1, 11)));
//! assert_eq!(abacus.estimate(), 1.0); // sample holds the whole graph: exact
//! abacus.process(StreamElement::delete(Edge::new(1, 11)));
//! assert_eq!(abacus.estimate(), 0.0);
//! ```
//!
//! Modules:
//!
//! * [`config`] — estimator configuration (memory budget, seed, batching),
//! * [`engine`] — the estimator registry ([`EstimatorSpec`] →
//!   [`ButterflyCounter`]), the sharded [`Ensemble`] execution layer, and
//!   the durable [`Checkpointer`] (versioned snapshots + WAL recovery),
//! * [`counter`] — re-export of the [`ButterflyCounter`] trait (defined in
//!   `abacus_stream`, the stream-consumer interface shared by every
//!   estimator: ABACUS, PARABACUS, the exact oracle, FLEET, CAS, ensembles),
//! * [`sample_graph`] — re-export of the bounded sample stored as a
//!   bipartite graph (defined in `abacus_sampling` next to the policies
//!   that drive it),
//! * [`snapshot`] — glue keeping the frozen CSR counting snapshot
//!   (`abacus_graph::csr`) in lock-step with the sample,
//! * [`probability`] — the butterfly-discovery probability of Eq. 1 and the
//!   reciprocal-increment rule,
//! * [`abacus`] — Algorithm 1,
//! * [`circuit`] — the incremental multi-view delta circuit: one ingest
//!   fanned out to N bit-exact live views (per-edge supports, per-vertex
//!   counts, clustering coefficient, bitruss tiers, anomaly windows),
//! * [`exact`] — the exact streaming oracle (unbounded memory, ground truth),
//! * [`parabacus`] — mini-batch parallel processing with versioned samples
//!   and a two-stage pipelined engine that overlaps sample-version creation
//!   with counting,
//! * [`stats`] — re-export of the per-run processing statistics (defined in
//!   `abacus_metrics`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abacus;
pub mod circuit;
pub mod config;
pub mod engine;
pub mod exact;
pub mod local;
pub mod monitor;
pub mod parabacus;
mod persist;
pub mod probability;
pub mod snapshot;

// The trait, the sample store, and the work counters moved down the crate
// stack (stream / sampling / metrics) so the insert-only baselines no longer
// depend on this crate — which lets the engine registry here construct
// *every* estimator in the workspace, baselines included.  The original
// module paths stay valid through these re-exports.
pub use abacus_metrics::stats;
pub use abacus_sampling::sample_graph;
pub use abacus_stream::counter;

pub use abacus::Abacus;
pub use circuit::{Circuit, ViewKind};
pub use config::{AbacusConfig, ParAbacusConfig, SnapshotMode, AUTO_SNAPSHOT_MIN_BUDGET};
pub use counter::ButterflyCounter;
pub use engine::{
    Checkpointer, EngineError, Ensemble, EnsembleMode, EnsembleSummary, EnsembleSupervisor,
    EstimatorKind, EstimatorSpec, Recovery, ReplicaError, ReplicaRecovery, RunManifest,
    SupervisorRecovery,
};
pub use exact::ExactCounter;
pub use local::LocalAbacus;
pub use monitor::{SharedEstimate, WindowedMonitor};
pub use parabacus::{ParAbacus, PhaseTimings};
pub use probability::{discovery_probability, increment, variance_upper_bound};
pub use sample_graph::SampleGraph;
pub use stats::ProcessingStats;
