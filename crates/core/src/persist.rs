//! Crate-internal codec helpers shared by the estimator
//! `save_state`/`restore_state` implementations: the processing-stats block
//! and the anomaly-series block.
//!
//! Every estimator payload is a flat little-endian [`Encoder`] stream that
//! starts with a configuration fingerprint (so a snapshot can never be
//! restored into an estimator built from different knobs) and ends with
//! [`Decoder::expect_end`] (so trailing garbage fails closed).  The shared
//! blocks live here so the six estimators cannot drift apart on how a
//! [`ProcessingStats`] or an [`AnomalySeries`] is laid out.

use abacus_graph::persist::{Decoder, Encoder, PersistError};
use abacus_metrics::{AnomalySeries, ProcessingStats, WindowSnapshot};

/// Encodes the five work counters, in declaration order.
pub(crate) fn encode_stats(enc: &mut Encoder, stats: &ProcessingStats) {
    enc.put_u64(stats.elements);
    enc.put_u64(stats.insertions);
    enc.put_u64(stats.deletions);
    enc.put_u64(stats.discovered_butterflies);
    enc.put_u64(stats.comparisons);
}

/// Decodes the five work counters written by [`encode_stats`].
pub(crate) fn decode_stats(dec: &mut Decoder<'_>) -> Result<ProcessingStats, PersistError> {
    Ok(ProcessingStats {
        elements: dec.get_u64()?,
        insertions: dec.get_u64()?,
        deletions: dec.get_u64()?,
        discovered_butterflies: dec.get_u64()?,
        comparisons: dec.get_u64()?,
    })
}

/// Encodes a windowed anomaly series (cadence, partial-window position, and
/// every recorded snapshot with its exact float bits).
pub(crate) fn encode_series(enc: &mut Encoder, series: &AnomalySeries) {
    enc.put_usize(series.window());
    enc.put_usize(series.in_window());
    enc.put_u64(series.elements());
    enc.put_f64(series.burst_factor());
    enc.put_usize(series.snapshots().len());
    for snapshot in series.snapshots() {
        enc.put_usize(snapshot.window);
        enc.put_u64(snapshot.elements);
        enc.put_f64(snapshot.estimate);
        enc.put_f64(snapshot.delta);
    }
}

/// Decodes a series written by [`encode_series`], validating the invariants
/// `AnomalySeries::from_state` would otherwise assert on.
pub(crate) fn decode_series(dec: &mut Decoder<'_>) -> Result<AnomalySeries, PersistError> {
    let window = dec.get_usize()?;
    let in_window = dec.get_usize()?;
    let elements = dec.get_u64()?;
    let burst_factor = dec.get_f64()?;
    if window == 0 {
        return Err(PersistError::Corrupt(
            "anomaly series window must be at least 1".into(),
        ));
    }
    if burst_factor.is_nan() || burst_factor <= 0.0 {
        return Err(PersistError::Corrupt(
            "anomaly series burst factor must be positive".into(),
        ));
    }
    let count = dec.get_usize()?;
    // Each snapshot is 32 bytes; reject counts the payload cannot hold
    // before allocating.
    if count > dec.remaining() / 32 {
        return Err(PersistError::Truncated(format!(
            "anomaly series claims {count} snapshots, payload holds at most {}",
            dec.remaining() / 32
        )));
    }
    let mut snapshots = Vec::with_capacity(count);
    for _ in 0..count {
        snapshots.push(WindowSnapshot {
            window: dec.get_usize()?,
            elements: dec.get_u64()?,
            estimate: dec.get_f64()?,
            delta: dec.get_f64()?,
        });
    }
    Ok(AnomalySeries::from_state(
        window,
        in_window,
        elements,
        snapshots,
        burst_factor,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_and_series_round_trip() {
        let stats = ProcessingStats {
            elements: 10,
            insertions: 7,
            deletions: 3,
            discovered_butterflies: 4,
            comparisons: 99,
        };
        let mut series = AnomalySeries::new(2).with_burst_factor(3.5);
        for i in 0..5 {
            series.observe(f64::from(i) * 1.5);
        }
        let mut enc = Encoder::new();
        encode_stats(&mut enc, &stats);
        encode_series(&mut enc, &series);
        let bytes = enc.finish();

        let mut dec = Decoder::new(&bytes);
        assert_eq!(decode_stats(&mut dec).unwrap(), stats);
        let restored = decode_series(&mut dec).unwrap();
        dec.expect_end().unwrap();
        assert_eq!(restored.window(), series.window());
        assert_eq!(restored.in_window(), series.in_window());
        assert_eq!(restored.elements(), series.elements());
        assert_eq!(restored.burst_factor(), series.burst_factor());
        assert_eq!(restored.snapshots(), series.snapshots());

        // Re-encoding the restored series is byte-identical.
        let mut again = Encoder::new();
        encode_series(&mut again, &restored);
        let mut reference = Encoder::new();
        encode_series(&mut reference, &series);
        assert_eq!(again.finish(), reference.finish());
    }

    #[test]
    fn series_decoding_fails_closed() {
        let mut enc = Encoder::new();
        encode_series(&mut enc, &AnomalySeries::new(4));
        let bytes = enc.finish();
        // Zero window.
        let mut bad = bytes.clone();
        bad[0] = 0;
        assert!(matches!(
            decode_series(&mut Decoder::new(&bad)),
            Err(PersistError::Corrupt(_))
        ));
        // Implausible snapshot count.
        let mut enc = Encoder::new();
        enc.put_usize(4);
        enc.put_usize(0);
        enc.put_u64(0);
        enc.put_f64(8.0);
        enc.put_usize(1 << 40);
        let bytes = enc.finish();
        assert!(matches!(
            decode_series(&mut Decoder::new(&bytes)),
            Err(PersistError::Truncated(_))
        ));
    }
}
