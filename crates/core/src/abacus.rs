//! ABACUS (Algorithm 1): streaming butterfly counting under insertions and
//! deletions.
//!
//! For every incoming element the estimator
//!
//! 1. counts the butterflies the element's edge forms with the edges of the
//!    bounded sample (cheapest-side set intersections, Algorithm 1 lines
//!    7–11),
//! 2. scales each discovered butterfly by the reciprocal of the discovery
//!    probability of Eq. 1 and adds `sgn(δ)` times that amount to the running
//!    estimate,
//! 3. hands the element to the Random Pairing policy (Algorithm 2) which
//!    decides whether the sample changes.
//!
//! The order matters: the count refinement always uses the sample state *as of
//! the previous element*, which is what the unbiasedness proof conditions on.

use crate::config::AbacusConfig;
use crate::counter::ButterflyCounter;
use crate::probability::increment;
use crate::sample_graph::SampleGraph;
use crate::snapshot::{entries_to_edge_equivalents, MirroredSample, SnapshotView};
use crate::stats::ProcessingStats;
use abacus_graph::count_butterflies_with_edge;
use abacus_graph::csr::CsrSnapshot;
use abacus_graph::persist::{Decoder, Encoder, PersistError};
use abacus_sampling::{RandomPairing, RandomPairingState};
use abacus_stream::{EdgeDelta, StreamElement};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The sequential ABACUS estimator.
#[derive(Debug)]
pub struct Abacus {
    config: AbacusConfig,
    sample: SampleGraph,
    /// Frozen CSR mirror of `sample` that the per-edge counting runs
    /// against when the configuration enables it (kept in lock-step by
    /// [`MirroredSample`]); `None` means counting probes the hash-backed
    /// sample directly.
    snapshot: Option<CsrSnapshot>,
    policy: RandomPairing,
    rng: StdRng,
    estimate: f64,
    stats: ProcessingStats,
}

impl Abacus {
    /// Creates an estimator from a configuration.
    ///
    /// ```
    /// use abacus_core::{Abacus, AbacusConfig, ButterflyCounter};
    /// use abacus_graph::Edge;
    /// use abacus_stream::StreamElement;
    ///
    /// let mut abacus = Abacus::new(AbacusConfig::new(64).with_seed(7));
    /// for (l, r) in [(0u32, 10u32), (0, 11), (1, 10), (1, 11)] {
    ///     abacus.process(StreamElement::insert(Edge::new(l, r)));
    /// }
    /// // The budget covers the whole stream, so the estimate is exact.
    /// assert_eq!(abacus.estimate(), 1.0);
    /// abacus.process(StreamElement::delete(Edge::new(1, 11)));
    /// assert_eq!(abacus.estimate(), 0.0);
    /// ```
    #[must_use]
    pub fn new(config: AbacusConfig) -> Self {
        let mut sample = SampleGraph::with_budget(config.budget);
        sample.set_kernel_tuning(config.kernel);
        Abacus {
            config,
            sample,
            snapshot: config
                .snapshot_enabled()
                .then(|| CsrSnapshot::new(config.kernel)),
            policy: RandomPairing::new(config.budget),
            rng: StdRng::seed_from_u64(config.seed),
            estimate: 0.0,
            stats: ProcessingStats::default(),
        }
    }

    /// The configuration this estimator was built with.
    #[must_use]
    pub fn config(&self) -> AbacusConfig {
        self.config
    }

    /// The current sample (read-only).
    #[must_use]
    pub fn sample(&self) -> &SampleGraph {
        &self.sample
    }

    /// The frozen CSR counting snapshot, when enabled.
    #[must_use]
    pub fn snapshot(&self) -> Option<&CsrSnapshot> {
        self.snapshot.as_ref()
    }

    /// The Random Pairing bookkeeping triplet `{|E|, c_b, c_g}`.
    #[must_use]
    pub fn sampler_state(&self) -> RandomPairingState {
        self.policy.state()
    }

    /// Work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ProcessingStats {
        self.stats
    }

    /// Processes one element: refine the estimate, then update the sample.
    fn process_element(&mut self, element: StreamElement) {
        // --- 1. Refine the butterfly count against the *current* sample. ---
        // The snapshot mirrors the sample exactly and reports probe-model
        // comparisons, so which backing counts cannot change any number.
        let per_edge = match &self.snapshot {
            Some(snapshot) => count_butterflies_with_edge(
                &SnapshotView::new(snapshot, &self.sample),
                element.edge,
            ),
            None => count_butterflies_with_edge(&self.sample, element.edge),
        };
        let is_insert = element.delta.is_insert();
        if per_edge.butterflies > 0 {
            let delta = increment(self.config.budget, self.policy.state(), is_insert)
                * per_edge.butterflies as f64;
            self.estimate += delta;
        }
        self.stats
            .record_element(is_insert, per_edge.butterflies, per_edge.comparisons);

        // --- 2. Update the sample via Random Pairing. ---
        match &mut self.snapshot {
            Some(snapshot) => {
                let mut mirrored = MirroredSample::new(&mut self.sample, snapshot);
                match element.delta {
                    EdgeDelta::Insert => {
                        self.policy
                            .insert(element.edge, &mut mirrored, &mut self.rng);
                    }
                    EdgeDelta::Delete => {
                        self.policy.delete(&element.edge, &mut mirrored);
                    }
                }
            }
            None => match element.delta {
                EdgeDelta::Insert => {
                    self.policy
                        .insert(element.edge, &mut self.sample, &mut self.rng);
                }
                EdgeDelta::Delete => self.policy.delete(&element.edge, &mut self.sample),
            },
        }
    }
}

impl ButterflyCounter for Abacus {
    fn process(&mut self, element: StreamElement) {
        self.process_element(element);
    }

    fn estimate(&self) -> f64 {
        self.estimate
    }

    fn memory_edges(&self) -> usize {
        // Honest accounting: besides the sampled edges themselves, charge the
        // memoised sorted copies of hub adjacency sets and the CSR snapshot
        // arenas (in edge equivalents), so the Table 2 memory numbers include
        // every counting-side duplicate of the sample.
        let aux = self.sample.sorted_cache_entries()
            + self
                .snapshot
                .as_ref()
                .map_or(0, CsrSnapshot::resident_entries);
        self.sample.len() + entries_to_edge_equivalents(aux)
    }

    fn name(&self) -> &'static str {
        "ABACUS"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    /// Serializes the full estimator state: configuration fingerprint,
    /// Random Pairing triplet, RNG words, the sample (with slot order and
    /// adjacency-representation flags), estimate bits, and work counters.
    ///
    /// The CSR counting snapshot is *not* serialized — it mirrors the sample
    /// exactly, so restore rebuilds it from the restored sample.  To keep its
    /// patch-history-dependent memory accounting deterministic across a
    /// save/restore cycle, saving compacts the live snapshot first (a rebuild
    /// is always compacted); compaction never changes estimates or
    /// probe-model comparisons.
    fn save_state(&mut self) -> Result<Vec<u8>, PersistError> {
        if let Some(snapshot) = &mut self.snapshot {
            snapshot.compact();
        }
        let mut enc = Encoder::new();
        enc.put_usize(self.config.budget);
        enc.put_u64(self.config.seed);
        enc.put_u8(u8::from(self.snapshot.is_some()));
        let state = self.policy.state();
        enc.put_usize(state.live_items);
        enc.put_usize(state.bad_deletions);
        enc.put_usize(state.good_deletions);
        for word in self.rng.state() {
            enc.put_u64(word);
        }
        self.sample.encode_state(&mut enc);
        enc.put_f64(self.estimate);
        crate::persist::encode_stats(&mut enc, &self.stats);
        Ok(enc.finish())
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), PersistError> {
        let mut dec = Decoder::new(state);
        let budget = dec.get_usize()?;
        let seed = dec.get_u64()?;
        let snapshot_present = dec.get_u8()? != 0;
        if budget != self.config.budget
            || seed != self.config.seed
            || snapshot_present != self.snapshot.is_some()
        {
            return Err(PersistError::Corrupt(
                "ABACUS snapshot was written under a different configuration".into(),
            ));
        }
        let triplet = RandomPairingState {
            live_items: dec.get_usize()?,
            bad_deletions: dec.get_usize()?,
            good_deletions: dec.get_usize()?,
        };
        self.policy = RandomPairing::from_state(self.config.budget, triplet);
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = dec.get_u64()?;
        }
        self.rng = StdRng::from_state(rng_state);
        self.sample.restore_state(&mut dec)?;
        self.estimate = dec.get_f64()?;
        self.stats = crate::persist::decode_stats(&mut dec)?;
        dec.expect_end()?;
        if snapshot_present {
            self.snapshot = Some(CsrSnapshot::from_edges(
                self.sample.edges().iter().copied(),
                self.config.kernel,
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Edge;
    use abacus_stream::generators::random::uniform_bipartite;
    use abacus_stream::{final_graph, inject_deletions_fast, DeletionConfig};
    use proptest::prelude::*;

    fn ins(l: u32, r: u32) -> StreamElement {
        StreamElement::insert(Edge::new(l, r))
    }
    fn del(l: u32, r: u32) -> StreamElement {
        StreamElement::delete(Edge::new(l, r))
    }

    /// A pre-interning writer's ABSNAP1 estimator payload — whose sample
    /// section is the legacy format (edge count, edges in slot order,
    /// per-side representation flags) — must restore into the current
    /// estimator and stay bit-exact from there on.  The history includes
    /// deletions, so the reference's interner carries freed slots the
    /// restored run rebuilds differently: the interner is pure layout, and
    /// this test is the estimator-level proof.
    #[test]
    fn absnap_payload_with_legacy_sample_section_restores_bit_exact() {
        use crate::SnapshotMode;
        use abacus_graph::adjacency::AdjacencySet;
        use abacus_graph::{Side, VertexRef};

        let config = AbacusConfig::new(150)
            .with_seed(9)
            .with_snapshot(SnapshotMode::Off);
        let mut reference = Abacus::new(config);
        // A promoted hub (left 7), a spread of small vertices, then enough
        // deletions to free interner slots and shrink (not demote) the hub.
        for r in 0..40u32 {
            reference.process(ins(7, 100 + r));
        }
        for l in 0..20u32 {
            reference.process(ins(l, 500 + (l % 5)));
        }
        for r in 0..10u32 {
            reference.process(del(7, 100 + r));
        }

        // Hand-encode the payload exactly as the pre-interning build wrote
        // it: identical header, RNG words, estimate, and stats; the sample
        // section in the legacy (marker-less) format.
        let mut enc = Encoder::new();
        enc.put_usize(config.budget);
        enc.put_u64(config.seed);
        enc.put_u8(0); // snapshot off
        let triplet = reference.sampler_state();
        enc.put_usize(triplet.live_items);
        enc.put_usize(triplet.bad_deletions);
        enc.put_usize(triplet.good_deletions);
        for word in reference.rng.state() {
            enc.put_u64(word);
        }
        let sample = reference.sample();
        enc.put_usize(sample.len());
        for e in sample.edges() {
            enc.put_u32(e.left);
            enc.put_u32(e.right);
        }
        for side in [Side::Left, Side::Right] {
            let mut seen = Vec::new();
            let mut flags = Vec::new();
            for e in sample.edges() {
                let id = match side {
                    Side::Left => e.left,
                    Side::Right => e.right,
                };
                if seen.contains(&id) {
                    continue;
                }
                seen.push(id);
                if let Some(large) = sample
                    .neighbors(VertexRef { side, id })
                    .and_then(AdjacencySet::as_large)
                {
                    flags.push((id, large.sorted_cache_len().is_some()));
                }
            }
            enc.put_usize(flags.len());
            for (id, cached) in flags {
                enc.put_u32(id);
                enc.put_u8(u8::from(cached));
            }
        }
        enc.put_f64(reference.estimate());
        crate::persist::encode_stats(&mut enc, &reference.stats());
        let legacy = enc.finish();

        let mut restored = Abacus::new(config);
        restored.restore_state(&legacy).unwrap();
        assert_eq!(restored.estimate(), reference.estimate());
        assert_eq!(restored.sample().edges(), reference.sample().edges());
        assert_eq!(restored.stats(), reference.stats());

        // The divergent interner internals must be invisible: both runs stay
        // in lockstep over a mixed insert/delete suffix.
        for i in 0..60u32 {
            let element = if i % 3 == 2 {
                del(i % 8, 500 + (i % 5))
            } else {
                ins(40 + i, 600 + (i % 7))
            };
            reference.process(element);
            restored.process(element);
            assert_eq!(restored.estimate(), reference.estimate(), "element {i}");
        }
        assert_eq!(restored.stats(), reference.stats());
        // (A byte-level re-save comparison would be too strong here: the
        // reference's interner remembers slots freed before the save point,
        // which a legacy payload cannot carry — behavior, not layout, is the
        // cross-version contract.)
    }

    /// With a budget that exceeds the stream size, ABACUS degenerates to exact
    /// counting: the estimate must equal the true count after every element.
    #[test]
    fn exact_when_budget_covers_the_whole_stream() {
        let stream = vec![
            ins(0, 10),
            ins(0, 11),
            ins(1, 10),
            ins(1, 11), // butterfly {0,1,10,11} complete -> 1
            ins(2, 10),
            ins(2, 11), // two more butterflies (0-2 and 1-2 pairs) -> 3
            del(0, 10), // destroys butterflies {0,1},{0,2} over (10,11) -> 1
            del(2, 11), // destroys butterfly {1,2} -> 0
        ];
        let expected = [0.0, 0.0, 0.0, 1.0, 1.0, 3.0, 1.0, 0.0];
        let mut abacus = Abacus::new(AbacusConfig::new(1_000).with_seed(1));
        for (element, want) in stream.into_iter().zip(expected) {
            abacus.process(element);
            assert_eq!(abacus.estimate(), want);
        }
        assert_eq!(abacus.name(), "ABACUS");
        // Auto keeps the sequential estimator on the hash path (no snapshot
        // arenas) and the sets are too small for sorted caches, so the
        // accounting sees exactly the sampled edges.
        assert_eq!(abacus.sample().len(), 4);
        assert_eq!(abacus.memory_edges(), 4);
        assert_eq!(abacus.stats().elements, 8);
    }

    #[test]
    fn sample_never_exceeds_budget() {
        let edges = uniform_bipartite(200, 200, 3_000, &mut StdRng::seed_from_u64(3));
        let stream = inject_deletions_fast(
            &edges,
            DeletionConfig::new(0.2),
            &mut StdRng::seed_from_u64(4),
        );
        let mut abacus = Abacus::new(AbacusConfig::new(64).with_seed(5));
        for element in &stream {
            abacus.process(*element);
            assert!(abacus.sample().len() <= 64);
            // Auxiliary structures (sorted caches; no snapshot at this
            // budget) are bounded by one duplicate of the sample.
            assert!(abacus.memory_edges() <= 2 * 64);
        }
        assert_eq!(
            abacus.sampler_state().live_items,
            final_graph(&stream).num_edges()
        );
    }

    /// Unbiasedness (Theorem 1), checked empirically: the mean estimate over
    /// many independent runs must be close to the exact count, and far closer
    /// than the per-run spread.
    #[test]
    fn estimates_are_empirically_unbiased() {
        let edges = uniform_bipartite(60, 60, 1_200, &mut StdRng::seed_from_u64(11));
        let stream = inject_deletions_fast(
            &edges,
            DeletionConfig::new(0.2),
            &mut StdRng::seed_from_u64(12),
        );
        let truth = abacus_graph::count_butterflies(&final_graph(&stream)) as f64;
        assert!(truth > 0.0, "test graph must contain butterflies");

        let runs = 200;
        let mut sum = 0.0;
        for seed in 0..runs {
            let mut abacus = Abacus::new(AbacusConfig::new(150).with_seed(seed));
            abacus.process_stream(&stream);
            sum += abacus.estimate();
        }
        let mean = sum / runs as f64;
        let relative_bias = (mean - truth).abs() / truth;
        assert!(
            relative_bias < 0.15,
            "mean {mean} deviates from truth {truth} by {relative_bias}"
        );
    }

    /// Insert-only sanity: larger budgets give estimates at least as close to
    /// the truth on average (variance shrinks with k), cf. Fig. 3/5 trends.
    #[test]
    fn larger_budget_is_not_less_accurate() {
        let edges = uniform_bipartite(80, 80, 2_000, &mut StdRng::seed_from_u64(21));
        let stream: Vec<StreamElement> = edges.iter().copied().map(StreamElement::insert).collect();
        let truth = abacus_graph::count_butterflies(&final_graph(&stream)) as f64;

        let avg_error = |budget: usize| -> f64 {
            let runs = 30;
            (0..runs)
                .map(|seed| {
                    let mut a = Abacus::new(AbacusConfig::new(budget).with_seed(seed));
                    a.process_stream(&stream);
                    (a.estimate() - truth).abs() / truth
                })
                .sum::<f64>()
                / runs as f64
        };
        let small = avg_error(100);
        let large = avg_error(1_000);
        assert!(
            large <= small * 1.1,
            "error did not improve with budget: small-k {small}, large-k {large}"
        );
    }

    /// The frozen-snapshot ablation: On and Off backings produce bit-equal
    /// estimates, identical probe-model comparisons, and the same sampler
    /// state over a dynamic stream with evictions.
    #[test]
    fn snapshot_backing_is_an_exact_ablation() {
        use crate::config::SnapshotMode;
        let edges = uniform_bipartite(50, 50, 1_500, &mut StdRng::seed_from_u64(31));
        let stream = inject_deletions_fast(
            &edges,
            DeletionConfig::new(0.25),
            &mut StdRng::seed_from_u64(32),
        );
        for budget in [64usize, 400] {
            let base = AbacusConfig::new(budget).with_seed(5);
            let mut with = Abacus::new(base.with_snapshot(SnapshotMode::On));
            let mut without = Abacus::new(base.with_snapshot(SnapshotMode::Off));
            assert!(with.snapshot().is_some());
            assert!(without.snapshot().is_none());
            for element in &stream {
                with.process(*element);
                without.process(*element);
                assert_eq!(with.estimate().to_bits(), without.estimate().to_bits());
            }
            assert_eq!(with.stats().comparisons, without.stats().comparisons);
            assert_eq!(with.sampler_state(), without.sampler_state());
            assert_eq!(with.sample().len(), without.sample().len());
            assert_eq!(
                with.snapshot().unwrap().num_edges(),
                with.sample().len(),
                "snapshot fell out of lock-step"
            );
        }
    }

    #[test]
    fn deletions_of_never_sampled_edges_keep_state_consistent() {
        let mut abacus = Abacus::new(AbacusConfig::new(2).with_seed(0));
        abacus.process(ins(0, 1));
        abacus.process(ins(1, 2));
        abacus.process(ins(2, 3));
        abacus.process(del(2, 3));
        abacus.process(del(0, 1));
        assert_eq!(abacus.sampler_state().live_items, 1);
        // Budget 2 can never discover a butterfly; estimate must remain 0.
        assert_eq!(abacus.estimate(), 0.0);
    }

    /// Mid-stream save/restore resumes bit-identically: estimate bits,
    /// sampler state, comparisons, memory accounting, and a re-saved payload.
    #[test]
    fn save_restore_mid_stream_is_bit_identical() {
        use crate::config::SnapshotMode;
        let edges = uniform_bipartite(60, 60, 2_000, &mut StdRng::seed_from_u64(41));
        let stream = inject_deletions_fast(
            &edges,
            DeletionConfig::new(0.2),
            &mut StdRng::seed_from_u64(42),
        );
        for mode in [SnapshotMode::Off, SnapshotMode::On] {
            let config = AbacusConfig::new(128).with_seed(3).with_snapshot(mode);
            let mut reference = Abacus::new(config);
            let mut interrupted = Abacus::new(config);
            let cut = 1_234;
            for element in &stream[..cut] {
                reference.process(*element);
                interrupted.process(*element);
            }
            // Both sides checkpoint (save_state compacts the CSR snapshot, so
            // the reference must save at the same point — the cadence the
            // Checkpointer enforces for real runs).
            let saved = interrupted.save_state().unwrap();
            let reference_saved = reference.save_state().unwrap();
            assert_eq!(saved, reference_saved, "payloads diverged ({mode:?})");
            let mut resumed = Abacus::new(config);
            resumed.restore_state(&saved).unwrap();
            for element in &stream[cut..] {
                reference.process(*element);
                resumed.process(*element);
            }
            assert_eq!(
                resumed.estimate().to_bits(),
                reference.estimate().to_bits(),
                "{mode:?}"
            );
            assert_eq!(resumed.sampler_state(), reference.sampler_state());
            assert_eq!(resumed.stats(), reference.stats());
            assert_eq!(resumed.memory_edges(), reference.memory_edges());
            assert_eq!(
                resumed.save_state().unwrap(),
                reference.save_state().unwrap()
            );
        }
    }

    #[test]
    fn restore_rejects_other_configurations() {
        let mut source = Abacus::new(AbacusConfig::new(64).with_seed(1));
        source.process(ins(0, 1));
        let saved = source.save_state().unwrap();
        let mut other_budget = Abacus::new(AbacusConfig::new(65).with_seed(1));
        assert!(other_budget.restore_state(&saved).is_err());
        let mut other_seed = Abacus::new(AbacusConfig::new(64).with_seed(2));
        assert!(other_seed.restore_state(&saved).is_err());
        let mut truncated = Abacus::new(AbacusConfig::new(64).with_seed(1));
        assert!(truncated.restore_state(&saved[..saved.len() - 1]).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// With a budget that always covers the live population, the estimate
        /// equals the exact butterfly count for arbitrary valid streams.
        #[test]
        fn exact_mode_matches_ground_truth(
            ops in proptest::collection::vec((any::<bool>(), 0u32..8, 0u32..8), 1..120),
            seed in any::<u64>(),
        ) {
            use std::collections::BTreeSet;
            let mut live: BTreeSet<(u32, u32)> = BTreeSet::new();
            let mut stream = Vec::new();
            for (want_insert, l, r) in ops {
                if want_insert {
                    if live.insert((l, r)) {
                        stream.push(ins(l, r));
                    }
                } else if live.remove(&(l, r)) {
                    stream.push(del(l, r));
                }
            }
            let mut abacus = Abacus::new(AbacusConfig::new(10_000).with_seed(seed));
            abacus.process_stream(&stream);
            let truth = abacus_graph::count_butterflies(&final_graph(&stream)) as f64;
            prop_assert!((abacus.estimate() - truth).abs() < 1e-6);
        }
    }
}
