//! Persistent worker pool for PARABACUS's parallel counting phase.
//!
//! Spawning operating-system threads for every mini-batch costs hundreds of
//! microseconds per batch — more than the entire per-edge counting work of a
//! small batch on a laptop-scale sample — and flattens the speedup curves of
//! Figs. 8 and 9.  [`CountingPool`] therefore keeps `p` worker threads alive
//! for the lifetime of the estimator and hands them one [`CountTask`] per
//! batch chunk through a channel.
//!
//! The pool deliberately avoids scoped borrows (the crate forbids `unsafe`):
//! each task carries cheap [`Arc`] handles to the live sample, the sealed
//! delta log, the batch, and the cached sampler triplets.  A worker drops its
//! handles *before* reporting the chunk result, so once the coordinator has
//! collected every result of a batch the estimator again holds the only
//! reference and `Arc::make_mut` mutates the sample in place without cloning.

use crate::probability::increment;
use crate::sample_graph::SampleGraph;
use crate::stats::ProcessingStats;
use abacus_graph::count_butterflies_with_edge;
use abacus_graph::csr::CsrSnapshot;
use abacus_sampling::RandomPairingState;
use abacus_stream::StreamElement;
use crossbeam::channel::{Receiver, Sender};
use std::ops::Range;
use std::sync::Arc;
use std::thread::JoinHandle;

use super::versioned::{VersionView, VersionedDeltas, ViewScratch};

/// One chunk of a mini-batch: count the butterflies of the elements in
/// `range` against their respective sample versions.
#[derive(Debug, Clone)]
pub(super) struct CountTask {
    /// Monotone id of the mini-batch this chunk belongs to.  With the
    /// pipelined engine several batches are in flight at once and their chunk
    /// results interleave on the shared result channel; the id lets the
    /// coordinator collect exactly one batch's results at a time.
    pub batch: u64,
    /// The sealed (post-batch) sample version the chunk counts against.
    pub sample: Arc<SampleGraph>,
    /// The frozen CSR mirror of the sealed sample; when present, the
    /// versioned views count against it instead of the hash-backed sample.
    pub snapshot: Option<Arc<CsrSnapshot>>,
    /// The sealed delta log of the batch.
    pub deltas: Arc<VersionedDeltas>,
    /// The batch elements.
    pub elements: Arc<Vec<StreamElement>>,
    /// Pre-update Random Pairing triplets, one per batch element.
    pub triplets: Arc<Vec<RandomPairingState>>,
    /// The half-open element range this task covers.
    pub range: Range<usize>,
    /// Which of the `p` static partitions this chunk is (for Fig. 10's
    /// per-thread workload attribution).
    pub chunk_index: usize,
    /// Memory budget `k` of the estimator (needed by Eq. 1).
    pub budget: usize,
}

/// The result of one executed [`CountTask`].
#[derive(Debug, Clone, Copy)]
pub(super) struct ChunkResult {
    /// The mini-batch the result belongs to.
    pub batch: u64,
    /// The chunk the result belongs to.
    pub chunk_index: usize,
    /// Signed, extrapolated partial count contributed by the chunk.
    pub partial: f64,
    /// Work counters of the chunk.
    pub stats: ProcessingStats,
}

/// Executes one chunk: per-edge counting against each element's own sample
/// version, extrapolated with the increment of Eq. 1.
///
/// This is the exact same code path the single-threaded fallback uses, so
/// estimates never depend on whether the pool was engaged.  `scratch` carries
/// the caller's long-lived view buffers; a worker reuses one across every
/// chunk it executes, so the versioned views allocate nothing per element in
/// the steady state.
pub(super) fn execute_task(task: &CountTask, scratch: &ViewScratch) -> ChunkResult {
    let mut partial = 0.0f64;
    let mut stats = ProcessingStats::default();
    for position in task.range.clone() {
        let element = task.elements[position];
        let view = match &task.snapshot {
            Some(snapshot) => VersionView::over_snapshot_in(
                snapshot,
                &task.sample,
                &task.deltas,
                position as u32,
                scratch,
            ),
            None => VersionView::new_in(&task.sample, &task.deltas, position as u32, scratch),
        };
        let per_edge = count_butterflies_with_edge(&view, element.edge);
        let is_insert = element.delta.is_insert();
        if per_edge.butterflies > 0 {
            partial += increment(task.budget, task.triplets[position], is_insert)
                * per_edge.butterflies as f64;
        }
        stats.record_element(is_insert, per_edge.butterflies, per_edge.comparisons);
    }
    ChunkResult {
        batch: task.batch,
        chunk_index: task.chunk_index,
        partial,
        stats,
    }
}

/// What a worker reports per executed chunk: the result, or the panic
/// message if the chunk panicked.  Propagating panics through the channel
/// keeps a buggy kernel a loud test failure instead of a coordinator that
/// blocks forever on a result that will never arrive.
type WorkerReport = Result<ChunkResult, String>;

/// A fixed-size pool of persistent counting workers.
#[derive(Debug)]
pub(super) struct CountingPool {
    task_tx: Option<Sender<CountTask>>,
    result_rx: Receiver<WorkerReport>,
    /// Results that arrived for a newer batch while an older one was being
    /// collected (workers finish chunks in arbitrary order across in-flight
    /// batches); handed out by a later
    /// [`collect_batch_into`](Self::collect_batch_into).
    parked: Vec<ChunkResult>,
    workers: Vec<JoinHandle<()>>,
}

impl CountingPool {
    /// Spawns `workers` persistent threads.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a counting pool needs at least one worker");
        let (task_tx, task_rx) = crossbeam::channel::unbounded::<CountTask>();
        let (result_tx, result_rx) = crossbeam::channel::unbounded::<WorkerReport>();
        let handles = (0..workers)
            .map(|index| {
                let task_rx = task_rx.clone();
                let result_tx = result_tx.clone();
                std::thread::Builder::new()
                    .name(format!("parabacus-worker-{index}"))
                    .spawn(move || {
                        // One scratch per worker, reused for every chunk this
                        // thread ever counts (see `execute_task`).
                        let scratch = ViewScratch::new();
                        while let Ok(task) = task_rx.recv() {
                            let report =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    execute_task(&task, &scratch)
                                }))
                                .map_err(|payload| panic_message(&payload));
                            // Release the Arc handles before reporting, so the
                            // coordinator can recycle the version's buffers
                            // once all results of the batch arrived.
                            drop(task);
                            let failed = report.is_err();
                            if result_tx.send(report).is_err() || failed {
                                break;
                            }
                        }
                    })
                    // lint:allow(panic-policy): pool construction cannot report errors through the infallible ButterflyCounter API, and a host that cannot spawn threads cannot run PARABACUS at all
                    .expect("failed to spawn PARABACUS worker thread")
            })
            .collect();
        CountingPool {
            task_tx: Some(task_tx),
            result_rx,
            parked: Vec::new(), // lint:allow(hot-path-alloc): one-time pool construction; parked entries are drained in place per batch
            workers: handles,
        }
    }

    /// Submits one chunk for execution.
    pub fn submit(&self, task: CountTask) {
        self.task_tx
            .as_ref()
            // lint:allow(panic-policy): submit-after-shutdown is a coordinator bug, not a runtime condition; the sender lives until drop()
            .expect("pool already shut down")
            .send(task)
            // lint:allow(panic-policy): a dead worker already propagated its own panic; this re-raises the crash on the coordinator by design (PR 2)
            .expect("PARABACUS worker threads terminated unexpectedly");
    }

    /// Collects exactly the `count` chunk results of mini-batch `batch` (in
    /// completion order) into `results` — cleared first, so the coordinator
    /// can hand the same vector back every batch and amortize its capacity —
    /// parking results of other in-flight batches for their own later
    /// collection.
    ///
    /// When [`collect_batch_into`](Self::collect_batch_into) returns, every
    /// worker that executed a chunk of `batch` has already dropped its task —
    /// and with it its `Arc` handles on that batch's sample version — so the
    /// coordinator can recycle the version's buffer.
    /// # Panics
    /// Re-raises (as a coordinator panic) any panic that occurred on a worker
    /// thread while executing a chunk.
    pub fn collect_batch_into(&mut self, batch: u64, count: usize, results: &mut Vec<ChunkResult>) {
        results.clear();
        results.reserve(count);
        self.parked.retain(|result| {
            if result.batch == batch {
                results.push(*result);
                false
            } else {
                true
            }
        });
        while results.len() < count {
            let report = self
                .result_rx
                .recv()
                // lint:allow(panic-policy): all senders vanishing mid-batch means a worker crashed without reporting; crash the coordinator rather than count short
                .expect("PARABACUS worker threads terminated unexpectedly");
            match report {
                Ok(result) if result.batch == batch => results.push(result),
                Ok(result) => self.parked.push(result),
                // lint:allow(panic-policy): worker panics are deliberately re-raised on the coordinator (documented `# Panics` contract)
                Err(message) => panic!("PARABACUS worker panicked: {message}"),
            }
        }
        // Workers finish in scheduler order, which would make the coordinator
        // reduce the floating-point partials in a run-to-run varying order.
        // Sorting by chunk index (at most `p` results, trivially cheap) makes
        // every multi-threaded run bit-reproducible — and bit-identical to
        // any other driver feeding the same elements (see
        // `tests/streaming_parity.rs`).
        results.sort_by_key(|result| result.chunk_index);
    }
}

/// Best-effort extraction of a human-readable panic message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Drop for CountingPool {
    fn drop(&mut self) {
        // Disconnect the task channel so idle workers exit their receive loop,
        // then wait for them to finish.
        self.task_tx = None;
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Edge;
    use abacus_sampling::SampleStore;

    fn sample_with(edges: &[(u32, u32)]) -> SampleGraph {
        let mut sample = SampleGraph::new();
        for &(l, r) in edges {
            sample.store_insert(Edge::new(l, r));
        }
        sample
    }

    fn triplets_for(len: usize) -> Vec<RandomPairingState> {
        vec![
            RandomPairingState {
                live_items: 3,
                bad_deletions: 0,
                good_deletions: 0
            };
            len
        ]
    }

    fn task_for(elements: Vec<StreamElement>, range: Range<usize>) -> CountTask {
        let sample = sample_with(&[(0, 11), (1, 10), (1, 11)]);
        let mut deltas = VersionedDeltas::new();
        deltas.seal(&sample);
        let triplets = triplets_for(elements.len());
        CountTask {
            batch: 0,
            sample: Arc::new(sample),
            snapshot: None,
            deltas: Arc::new(deltas),
            elements: Arc::new(elements),
            triplets: Arc::new(triplets),
            range,
            chunk_index: 0,
            budget: 100,
        }
    }

    #[test]
    fn snapshot_backed_tasks_count_identically() {
        use abacus_graph::intersect::KernelTuning;
        let batch = vec![
            StreamElement::insert(Edge::new(0, 10)),
            StreamElement::delete(Edge::new(0, 10)),
        ];
        let hash_task = task_for(batch, 0..2);
        let mut snap_task = hash_task.clone();
        snap_task.snapshot = Some(Arc::new(CsrSnapshot::from_edges(
            hash_task.sample.edges().iter().copied(),
            KernelTuning::default(),
        )));
        let scratch = ViewScratch::new();
        let hash_result = execute_task(&hash_task, &scratch);
        let snap_result = execute_task(&snap_task, &scratch);
        assert_eq!(hash_result.partial.to_bits(), snap_result.partial.to_bits());
        assert_eq!(hash_result.stats, snap_result.stats);
    }

    #[test]
    fn execute_task_counts_and_extrapolates() {
        // Budget far above the live population: probability 1, increment ±1.
        let batch = vec![
            StreamElement::insert(Edge::new(0, 10)),
            StreamElement::delete(Edge::new(0, 10)),
        ];
        let result = execute_task(&task_for(batch, 0..2), &ViewScratch::new());
        // The insertion finds the butterfly (+1), the deletion removes it (−1).
        assert_eq!(result.partial, 0.0);
        assert_eq!(result.stats.elements, 2);
        assert_eq!(result.stats.discovered_butterflies, 2);
    }

    #[test]
    fn execute_task_respects_the_range() {
        let batch = vec![
            StreamElement::insert(Edge::new(0, 10)),
            StreamElement::insert(Edge::new(5, 50)),
        ];
        let result = execute_task(&task_for(batch, 1..2), &ViewScratch::new());
        assert_eq!(result.stats.elements, 1);
        assert_eq!(result.partial, 0.0);
    }

    #[test]
    fn pool_runs_tasks_and_returns_all_results() {
        let mut pool = CountingPool::new(3);
        let batch = vec![StreamElement::insert(Edge::new(0, 10)); 8];
        for chunk in 0..4usize {
            let mut task = task_for(batch.clone(), (chunk * 2)..(chunk * 2 + 2));
            task.chunk_index = chunk;
            pool.submit(task);
        }
        let mut results = Vec::new();
        pool.collect_batch_into(0, 4, &mut results);
        results.sort_by_key(|r| r.chunk_index);
        assert_eq!(results.len(), 4);
        for (i, result) in results.iter().enumerate() {
            assert_eq!(result.chunk_index, i);
            assert_eq!(result.stats.elements, 2);
        }
    }

    #[test]
    fn interleaved_batches_are_collected_separately() {
        let mut pool = CountingPool::new(4);
        let elements = vec![StreamElement::insert(Edge::new(0, 10)); 2];
        // Two in-flight batches with two chunks each, submitted interleaved.
        for chunk in 0..2usize {
            for batch_id in 0..2u64 {
                let mut task = task_for(elements.clone(), 0..2);
                task.batch = batch_id;
                task.chunk_index = chunk;
                pool.submit(task);
            }
        }
        // Collect the batches in order; results of batch 1 that complete
        // early must be parked, not lost and not misattributed.
        let mut results = Vec::new();
        for batch_id in 0..2u64 {
            // Reusing one vector across collections mirrors the coordinator.
            pool.collect_batch_into(batch_id, 2, &mut results);
            assert_eq!(results.len(), 2);
            assert!(results.iter().all(|r| r.batch == batch_id));
            assert_eq!(results.iter().map(|r| r.stats.elements).sum::<u64>(), 4);
        }
        assert!(pool.parked.is_empty());
    }

    #[test]
    fn workers_release_their_handles_before_reporting() {
        let mut pool = CountingPool::new(2);
        let elements = Arc::new(vec![StreamElement::insert(Edge::new(0, 10)); 4]);
        let mut task = task_for(Vec::new(), 0..0);
        task.batch = 0;
        task.elements = Arc::clone(&elements);
        task.triplets = Arc::new(triplets_for(elements.len()));
        task.range = 0..4;
        pool.submit(task.clone());
        pool.submit(CountTask {
            range: 0..2,
            chunk_index: 1,
            ..task
        });
        pool.collect_batch_into(0, 2, &mut Vec::new());
        // Both workers reported, so the only remaining strong reference to the
        // element vector is the local one.
        assert_eq!(Arc::strong_count(&elements), 1);
    }

    #[test]
    fn dropping_the_pool_joins_all_workers() {
        let pool = CountingPool::new(4);
        drop(pool); // must not hang or panic
    }
}
