//! PARABACUS: mini-batch parallel butterfly counting (§V of the paper),
//! extended with a two-stage *pipelined* execution engine.
//!
//! ABACUS's workflow (count, then update the sample) is inverted per
//! mini-batch:
//!
//! 1. **Sequential sample-version creation** — the Random Pairing updates of
//!    all `M` edges in the batch are applied one after the other to the live
//!    sample; for every edge the pre-update bookkeeping triplet
//!    `{|E|, c_b, c_g}` is cached and every adjacency change is recorded as a
//!    versioned delta ([`versioned`]).
//! 2. **Parallel per-edge counting** — the batch is split into `p` equal
//!    chunks; each worker thread counts, for each of its edges, the
//!    butterflies the edge forms with *its* sample version (reconstructed
//!    through a [`VersionView`](versioned::VersionView)) and extrapolates
//!    with the increment computed from the cached triplet.
//! 3. **Reduction and consolidation** — the partial counts are summed into the
//!    running estimate once the batch's chunk results are collected.
//!
//! # The pipeline
//!
//! In the paper's schedule the two phases strictly alternate: the coordinator
//! idles while the workers count, and all `p` workers idle during version
//! creation — the serial fraction that flattens the speedup curves of
//! Figs. 8–9.  With [`ParAbacusConfig::pipeline_depth`] `> 1` (the default is
//! 2) the engine overlaps them instead: after sealing batch *i*'s delta log
//! and dispatching its chunks to the worker pool, the coordinator immediately
//! runs phase 1 of batch *i+1* while the workers are still counting batch
//! *i*.
//!
//! Batch *i*'s workers hold `Arc` handles on the sample version they count
//! against, so batch *i+1*'s updates cannot touch that buffer.  Instead the
//! engine double-buffers: phase 1 of batch *i+1* writes into the buffer
//! recycled from batch *i−1* after bringing it up to date by replaying the
//! recorded op logs of the still-in-flight batches
//! ([`VersionedDeltas::replay_onto`], O(batch) work instead of an O(k) sample
//! clone).  `Arc`-level consolidation is thereby deferred: a buffer is only
//! reused once the batch counting against it has been collected and its
//! workers have dropped their handles.
//!
//! Exactness (Theorem 5) is preserved: sample transitions and RNG draws
//! happen in stream order on the coordinator regardless of depth, and every
//! batch is counted against its own sealed versions, so estimates stay
//! bit-for-bit identical to sequential ABACUS up to floating-point summation
//! order — the tests assert this for randomized insert/delete streams across
//! pipeline depths.
//!
//! The price of the overlap is *latency*, not correctness: up to
//! `pipeline_depth - 1` dispatched batches may not yet be reflected in
//! [`ParAbacus::estimate`] / [`ParAbacus::stats`].  [`ParAbacus::flush`] (and
//! therefore [`ButterflyCounter::process_stream`] and
//! [`ButterflyCounter::finish`]) drains the pipeline completely.

mod pool;
pub mod versioned;

use crate::config::ParAbacusConfig;
use crate::counter::ButterflyCounter;
use crate::sample_graph::SampleGraph;
use crate::snapshot::entries_to_edge_equivalents;
use crate::stats::ProcessingStats;
use abacus_graph::csr::CsrSnapshot;
use abacus_graph::persist::{Decoder, Encoder, PersistError};
use abacus_sampling::{RandomPairing, RandomPairingState};
use abacus_stream::{EdgeDelta, StreamElement};
use pool::{execute_task, ChunkResult, CountTask, CountingPool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::Arc;
use versioned::{RecordingSample, VersionedDeltas, ViewScratch};

/// A dispatched mini-batch whose chunk results have not been collected yet.
#[derive(Debug)]
struct InFlightBatch {
    /// Monotone batch id (matches the `batch` tag of its chunk results).
    id: u64,
    /// Number of chunk results to collect.
    chunks: usize,
    /// The sealed sample version the batch counts against; recycled as the
    /// next spare buffer once the batch is collected.
    sample: Arc<SampleGraph>,
    /// The sealed delta log (also carries the op log replayed onto stale
    /// spare buffers while this batch is in flight).
    deltas: Arc<VersionedDeltas>,
    /// The batch's elements; recycled as a future buffer once collected.
    elements: Arc<Vec<StreamElement>>,
    /// The batch's cached sampler triplets; recycled once collected.
    triplets: Arc<Vec<RandomPairingState>>,
}

/// The mini-batch parallel PARABACUS estimator.
///
/// Dropping the estimator with buffered elements or in-flight batches is
/// safe and never blocks on outstanding counting work beyond joining the
/// worker threads; the pending work is discarded.  Call
/// [`flush`](Self::flush) or [`finish`](ButterflyCounter::finish) first if
/// the final estimate is needed.
#[derive(Debug)]
pub struct ParAbacus {
    config: ParAbacusConfig,
    /// The live sample, reflecting phase 1 of every dispatched batch.
    sample: Arc<SampleGraph>,
    /// Frozen CSR mirror of the live sample that phase-2 counting runs
    /// against when enabled.  Kept in lock-step by replaying each batch's
    /// sealed op log (O(batch), mirroring `VersionedDeltas::replay_onto`);
    /// while older batches still pin the `Arc`, `Arc::make_mut` clones the
    /// flat arenas (a memcpy, not a rebuild) before patching.  `None` while
    /// the snapshot is off (mode `Off`, or `Auto` deciding the maintenance
    /// would cost more than the sorted kernels recover).
    snapshot: Option<Arc<CsrSnapshot>>,
    /// Cumulative sample mutations replayed across all sealed batches (the
    /// maintenance-cost side of the `Auto` profitability estimate).
    replayed_ops: u64,
    /// `(stats.comparisons, replayed_ops)` at the previous batch's snapshot
    /// decision: the `Auto` heuristic judges *marginal* (batch-over-batch)
    /// probe density, which converges to the workload's steady state within
    /// a batch or two, where the cumulative ratio would drag the sample-fill
    /// transient through the profitability band mid-stream.
    density_marker: (u64, u64),
    policy: RandomPairing,
    rng: StdRng,
    estimate: f64,
    buffer: Vec<StreamElement>,
    stats: ProcessingStats,
    thread_comparisons: Vec<u64>,
    batches: u64,
    pool: Option<CountingPool>,
    /// Dispatched-but-uncollected batches, oldest first (at most
    /// `pipeline_depth - 1` after a flush step).
    in_flight: VecDeque<InFlightBatch>,
    /// The sample buffer recycled from the most recently collected batch.
    /// Invariant: its state plus the op logs of `in_flight` (in order) equals
    /// the live sample — i.e. it is stale by exactly the in-flight batches.
    spare_sample: Option<Arc<SampleGraph>>,
    /// Delta-log allocations recycled from collected batches.
    spare_deltas: Vec<Arc<VersionedDeltas>>,
    /// Element vectors recycled from collected batches; each flush takes one
    /// back as the next staging buffer, so the steady state stops allocating
    /// a fresh batch-sized vector per flush.
    spare_elements: Vec<Vec<StreamElement>>,
    /// Sampler-triplet vectors recycled from collected batches.
    spare_triplets: Vec<Vec<RandomPairingState>>,
    /// Chunk-result vector handed to the pool on every collection (cleared,
    /// never dropped — its capacity is at most `threads` entries).
    spare_results: Vec<ChunkResult>,
    /// View buffers for the single-threaded inline counting path (the pool
    /// workers each keep their own); lives as long as the estimator so the
    /// per-edge views stop allocating once warm.
    inline_scratch: ViewScratch,
    timings: PhaseTimings,
}

/// Wall-clock time spent in each phase of the mini-batch workflow, summed
/// over all flushed batches.
///
/// Phase 1 is inherently sequential (Random Pairing updates + delta
/// recording, plus — in pipelined mode — bringing the double-buffered sample
/// copy up to date); useful for explaining where the speedup curves of
/// Figs. 8–9 saturate (Amdahl's law on phase 1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Seconds spent creating sample versions sequentially (phase 1).
    pub sequential_seconds: f64,
    /// Seconds the coordinator spent dispatching and waiting for per-edge
    /// counting results (phase 2).  In alternating mode (`pipeline_depth ==
    /// 1`) this is the counting wall clock; in pipelined mode it is only the
    /// *non-overlapped* remainder — the blocking wait left after phase 1 of
    /// the next batch already ran — so `counting_seconds` shrinking towards
    /// zero means the pipeline is hiding the parallel phase completely.
    pub counting_seconds: f64,
}

impl ParAbacus {
    /// Creates an estimator from a configuration.
    ///
    /// ```
    /// use abacus_core::{ButterflyCounter, ParAbacus, ParAbacusConfig};
    /// use abacus_graph::Edge;
    /// use abacus_stream::StreamElement;
    ///
    /// let mut par = ParAbacus::new(
    ///     ParAbacusConfig::new(64)
    ///         .with_batch_size(2)
    ///         .with_threads(2)
    ///         .with_pipeline_depth(2),
    /// );
    /// for (l, r) in [(0u32, 10u32), (0, 11), (1, 10), (1, 11)] {
    ///     par.process(StreamElement::insert(Edge::new(l, r)));
    /// }
    /// // `finish` flushes the partial batch and drains the pipeline.
    /// assert_eq!(par.finish(), 1.0); // one butterfly, counted exactly
    /// ```
    #[must_use]
    pub fn new(config: ParAbacusConfig) -> Self {
        let mut sample = SampleGraph::with_budget(config.budget);
        sample.set_kernel_tuning(config.kernel);
        ParAbacus {
            config,
            sample: Arc::new(sample),
            snapshot: None,
            replayed_ops: 0,
            density_marker: (0, 0),
            policy: RandomPairing::new(config.budget),
            rng: StdRng::seed_from_u64(config.seed),
            estimate: 0.0,
            buffer: Vec::with_capacity(config.batch_size), // lint:allow(hot-path-alloc): one-time construction; the staging buffer is swapped with recycled vectors thereafter
            stats: ProcessingStats::default(),
            thread_comparisons: vec![0; config.threads], // lint:allow(hot-path-alloc): one-time construction; fixed `p`-sized table mutated in place
            batches: 0,
            pool: None,
            in_flight: VecDeque::new(),
            spare_sample: None,
            spare_deltas: Vec::new(), // lint:allow(hot-path-alloc): one-time construction of the recycling pools themselves
            spare_elements: Vec::new(), // lint:allow(hot-path-alloc): one-time construction of the recycling pools themselves
            spare_triplets: Vec::new(), // lint:allow(hot-path-alloc): one-time construction of the recycling pools themselves
            spare_results: Vec::new(), // lint:allow(hot-path-alloc): one-time construction of the recycling pools themselves
            inline_scratch: ViewScratch::new(),
            timings: PhaseTimings::default(),
        }
    }

    /// Cumulative per-phase wall-clock timings over all flushed batches.
    #[must_use]
    pub fn phase_timings(&self) -> PhaseTimings {
        self.timings
    }

    /// The configuration this estimator was built with.
    #[must_use]
    pub fn config(&self) -> ParAbacusConfig {
        self.config
    }

    /// The current sample (read-only; reflects phase 1 of every *dispatched*
    /// batch, which may run ahead of [`estimate`](ButterflyCounter::estimate)
    /// while batches are in flight).
    #[must_use]
    pub fn sample(&self) -> &SampleGraph {
        &self.sample
    }

    /// The frozen CSR counting snapshot, when enabled (mirrors the live
    /// sample after the last dispatched batch).
    #[must_use]
    pub fn snapshot(&self) -> Option<&CsrSnapshot> {
        self.snapshot.as_deref()
    }

    /// The Random Pairing bookkeeping triplet after the last dispatched
    /// batch.
    #[must_use]
    pub fn sampler_state(&self) -> RandomPairingState {
        self.policy.state()
    }

    /// Work counters accumulated over all *collected* batches (synchronised
    /// with the estimate; call [`flush`](Self::flush) to include in-flight
    /// batches).
    #[must_use]
    pub fn stats(&self) -> ProcessingStats {
        self.stats
    }

    /// Cumulative set-intersection membership checks performed by each worker
    /// thread (the per-thread workload of Fig. 10).
    #[must_use]
    pub fn thread_workloads(&self) -> &[u64] {
        &self.thread_comparisons
    }

    /// Number of mini-batches processed so far.
    #[must_use]
    pub fn batches_processed(&self) -> u64 {
        self.batches
    }

    /// Cumulative sample mutations replayed into counting backings over all
    /// collected batches — the denominator of the probe-density ratio the
    /// `--snapshot auto` heuristic weighs [`stats`](Self::stats)
    /// `.comparisons` against (see `BENCH_parabacus.json`).
    #[must_use]
    pub fn replayed_ops(&self) -> u64 {
        self.replayed_ops
    }

    /// Number of elements buffered but not yet part of a dispatched batch.
    #[must_use]
    pub fn pending_elements(&self) -> usize {
        self.buffer.len()
    }

    /// Number of dispatched mini-batches whose results have not been
    /// collected into the estimate yet (at most `pipeline_depth - 1` between
    /// calls, zero after [`flush`](Self::flush)).
    #[must_use]
    pub fn in_flight_batches(&self) -> usize {
        self.in_flight.len()
    }

    /// Processes any buffered elements as a (possibly short) mini-batch and
    /// drains the pipeline, so that the estimate, the statistics, and the
    /// per-thread workloads reflect every element processed so far.
    ///
    /// [`ButterflyCounter::process_stream`] and
    /// [`ButterflyCounter::finish`] call this automatically at the end of the
    /// stream; call it manually whenever an up-to-date estimate is needed
    /// mid-stream.  Flushing mid-stream costs pipeline overlap (the next
    /// batch starts with an empty pipeline) but never affects the estimate's
    /// value.
    pub fn flush(&mut self) {
        if !self.buffer.is_empty() {
            self.flush_batch();
        }
        while !self.in_flight.is_empty() {
            self.collect_oldest();
        }
    }

    /// Whether phase 2 of the batch just sealed should count against the
    /// frozen CSR snapshot.
    ///
    /// `On`/`Off` are unconditional.  `Auto` estimates profitability from
    /// observed work: maintaining the snapshot costs O(row) per replayed
    /// sample mutation, counting against it saves on intersection probes —
    /// but only inside a *band* of probe density (probes per replayed
    /// mutation, measured batch-over-batch via `density_marker`).  Below
    /// the band (mutation-dominated workloads, Orkut-like at ~0.1
    /// probes/element) the replay costs more than it saves.  The band also
    /// has a ceiling: far above it, the hash path — with its memoised
    /// sorted hub copies — is already cache-hot and the marginal kernel
    /// savings no longer cover the maintenance.  The fig9 sweeps behind
    /// `BENCH_parabacus.json` put the hub-skewed Trackers-like analog at
    /// density ~18 probes/op and the probe-dense Movielens-like analog at
    /// ~60; with the interned sample store and pooled view scratch, forcing
    /// the snapshot on measures *positive* at both densities (the old 32×
    /// ceiling — tuned when the hash slow path still paid per-probe malloc
    /// churn — sat between them and cost Movielens-like runs ~6% by keeping
    /// the snapshot off).  The 128× ceiling leaves the measured band with
    /// ~2× headroom while still refusing pathologically probe-dominated
    /// workloads where replay is pure overhead.  Marginal rather than
    /// cumulative density matters on exactly that boundary: while the
    /// sample fills, the cumulative ratio climbs *through* the band and
    /// wrongly enables the snapshot mid-stream on workloads whose steady
    /// state lies above it.  Which backing counts never changes estimates
    /// or probe-model comparisons, so this adaptivity is invisible in every
    /// reported number.
    fn snapshot_wanted(&self) -> bool {
        const AUTO_PROBES_PER_OP: u64 = 8;
        const AUTO_MAX_PROBES_PER_OP: u64 = 128;
        const AUTO_WARMUP_BATCHES: u64 = 2;
        /// Below this mini-batch size the per-batch savings no longer cover
        /// the snapshot's per-batch costs (measured: M = 500 regresses a few
        /// percent while M = 10000 gains — see `BENCH_parabacus.json`).
        const AUTO_MIN_BATCH: usize = 2_000;
        match self.config.snapshot {
            crate::config::SnapshotMode::Off => false,
            crate::config::SnapshotMode::On => true,
            crate::config::SnapshotMode::Auto => {
                let probes = self.stats.comparisons.saturating_sub(self.density_marker.0);
                let ops = self.replayed_ops.saturating_sub(self.density_marker.1);
                self.config.snapshot_enabled()
                    && self.config.batch_size >= AUTO_MIN_BATCH
                    && self.batches > AUTO_WARMUP_BATCHES
                    && probes >= AUTO_PROBES_PER_OP * ops
                    && probes <= AUTO_MAX_PROBES_PER_OP * ops
            }
        }
    }

    /// Takes a uniquely owned sample buffer holding the live state, for the
    /// next batch's phase 1 to mutate.
    ///
    /// Fast path: nothing is in flight, so the live `Arc` is unique and is
    /// simply unwrapped.  Pipelined path: the live buffer is pinned by
    /// in-flight workers, so the spare buffer (recycled from the last
    /// collected batch) is brought up to date by replaying the in-flight
    /// batches' op logs — O(total in-flight batch size), not O(k).  A full
    /// clone of the live sample is the fallback when no spare exists yet.
    fn take_writable_sample(&mut self) -> SampleGraph {
        let live = std::mem::replace(&mut self.sample, Arc::new(SampleGraph::new()));
        match Arc::try_unwrap(live) {
            Ok(sample) => {
                // The spare (if any) is stale by the batch we are about to
                // apply in place, with no in-flight op log to catch it up.
                self.spare_sample = None;
                sample
            }
            Err(live) => {
                let recycled = self
                    .spare_sample
                    .take()
                    .and_then(|arc| Arc::try_unwrap(arc).ok());
                match recycled {
                    Some(mut stale) => {
                        for entry in &self.in_flight {
                            entry.deltas.replay_onto(&mut stale);
                        }
                        stale
                    }
                    None => SampleGraph::clone(&live),
                }
            }
        }
    }

    /// Takes a uniquely owned, empty delta log, recycling allocations from
    /// collected batches.
    fn take_delta_log(&mut self) -> Arc<VersionedDeltas> {
        let mut log = self
            .spare_deltas
            .pop()
            .unwrap_or_else(|| Arc::new(VersionedDeltas::new()));
        Arc::make_mut(&mut log).clear();
        log
    }

    /// Folds one chunk result into the running estimate and counters.
    fn reduce(&mut self, result: &ChunkResult) {
        self.estimate += result.partial;
        self.stats.merge(&result.stats);
        self.thread_comparisons[result.chunk_index % self.config.threads] +=
            result.stats.comparisons;
    }

    /// Blocks until the oldest in-flight batch is fully counted, reduces its
    /// results, and recycles its buffers.
    fn collect_oldest(&mut self) {
        let entry = self
            .in_flight
            .pop_front()
            // lint:allow(panic-policy): every caller checks the pipeline is non-empty first; an empty pop is a coordinator bug worth crashing on
            .expect("collect_oldest called with an empty pipeline");
        // lint:allow(determinism): wall-clock timing feeds the diagnostic timings report only, never an estimate
        let wait_start = std::time::Instant::now();
        let mut results = std::mem::take(&mut self.spare_results);
        self.pool
            .as_mut()
            // lint:allow(panic-policy): the pool is created before the first batch dispatches and lives until drop; an in-flight batch without it is a bug
            .expect("an in-flight batch requires a worker pool")
            .collect_batch_into(entry.id, entry.chunks, &mut results);
        self.timings.counting_seconds += wait_start.elapsed().as_secs_f64();
        for result in &results {
            self.reduce(result);
        }
        self.spare_results = results;
        // The workers dropped their handles before reporting, so the batch's
        // buffers are uniquely owned again and can back the next batch.
        if Arc::ptr_eq(&entry.sample, &self.sample) {
            // The batch counted against the live buffer itself (it was
            // dispatched with an empty pipeline); any older spare is now
            // stale beyond repair since this batch's log leaves the queue.
            self.spare_sample = None;
        } else {
            self.spare_sample = Some(entry.sample);
        }
        if Arc::strong_count(&entry.deltas) == 1 {
            self.spare_deltas.push(entry.deltas);
        }
        if let Ok(mut elements) = Arc::try_unwrap(entry.elements) {
            elements.clear();
            self.spare_elements.push(elements);
        }
        if let Ok(mut triplets) = Arc::try_unwrap(entry.triplets) {
            triplets.clear();
            self.spare_triplets.push(triplets);
        }
    }

    fn flush_batch(&mut self) {
        let elements: Vec<StreamElement> = std::mem::replace(
            &mut self.buffer,
            // Stage the next batch into a recycled element vector (its
            // capacity survived `clear()`), falling back to a fresh one only
            // until the pipeline has produced a returnable buffer.
            self.spare_elements
                .pop()
                // lint:allow(hot-path-alloc): cold fallback — taken only until the pipeline returns its first recycled buffer
                .unwrap_or_else(|| Vec::with_capacity(self.config.batch_size)),
        );
        let m = elements.len();
        let batch_id = self.batches;
        self.batches += 1;
        // lint:allow(determinism): phase timing feeds the diagnostic timings report only, never an estimate
        let phase1_start = std::time::Instant::now();

        // --- Phase 1: sequential sample-version creation. ------------------
        // Cache the pre-update triplet of every edge and record the deltas its
        // update applies to the sample.  The writable buffer is the live
        // sample itself when nothing is in flight, or the recycled
        // double-buffer while workers still count the previous batch.
        let mut sample = self.take_writable_sample();
        let mut deltas_arc = self.take_delta_log();
        let deltas = Arc::make_mut(&mut deltas_arc);
        let mut triplets: Vec<RandomPairingState> = self.spare_triplets.pop().unwrap_or_default();
        triplets.reserve(m);
        for (position, element) in elements.iter().enumerate() {
            triplets.push(self.policy.state());
            let mut recorder = RecordingSample::new(&mut sample, deltas, position as u32);
            match element.delta {
                EdgeDelta::Insert => {
                    self.policy
                        .insert(element.edge, &mut recorder, &mut self.rng);
                }
                EdgeDelta::Delete => {
                    self.policy.delete(&element.edge, &mut recorder);
                }
            }
        }

        // Freeze the delta log against the post-batch sample: one indexing
        // pass per touched vertex makes every versioned probe in phase 2 a
        // binary search.
        deltas.seal(&sample);
        self.sample = Arc::new(sample);

        // Bring the frozen CSR mirror up to the sealed post-batch state by
        // replaying the batch's op log — O(batch) row patches, with the
        // O(sample) compaction amortised behind the snapshot's churn
        // threshold.  Workers of still-in-flight batches pin the previous
        // snapshot `Arc`, in which case `make_mut` clones the arenas first.
        self.replayed_ops += deltas.recorded_ops() as u64;
        let snapshot_wanted = self.snapshot_wanted();
        // Start the next batch's marginal-density window at this decision
        // point (comparisons lag by the still-in-flight batches, which is a
        // deterministic function of the pipeline depth — noise-free, just
        // shifted by a batch).
        self.density_marker = (self.stats.comparisons, self.replayed_ops);
        if snapshot_wanted {
            match &mut self.snapshot {
                Some(snapshot) => {
                    let snapshot = Arc::make_mut(snapshot);
                    for (edge, added) in deltas.ops() {
                        snapshot.apply(edge, added);
                    }
                }
                None => {
                    // (Re)build wholesale from the sealed sample — only on
                    // enable transitions, which the cumulative statistics
                    // make rare.
                    self.snapshot = Some(Arc::new(CsrSnapshot::from_edges(
                        self.sample.edges().iter().copied(),
                        self.config.kernel,
                    )));
                }
            }
        } else {
            self.snapshot = None;
        }
        self.timings.sequential_seconds += phase1_start.elapsed().as_secs_f64();

        // --- Phase 2: parallel per-edge counting. ---------------------------
        let threads = self.config.threads.min(m).max(1);
        let chunk_size = m.div_ceil(threads);
        let elements = Arc::new(elements);
        let triplets = Arc::new(triplets);
        let chunk_task = |chunk_index: usize| CountTask {
            batch: batch_id,
            sample: Arc::clone(&self.sample),
            snapshot: self.snapshot.as_ref().map(Arc::clone),
            deltas: Arc::clone(&deltas_arc),
            elements: Arc::clone(&elements),
            triplets: Arc::clone(&triplets),
            range: (chunk_index * chunk_size)..((chunk_index + 1) * chunk_size).min(m),
            chunk_index,
            budget: self.config.budget,
        };

        if self.config.threads == 1 {
            // Sequential configuration: no pool, count and reduce inline.
            // This is the exact same per-edge code path the workers run, so
            // estimates never depend on whether the pool was engaged.
            // lint:allow(determinism): phase timing feeds the diagnostic timings report only, never an estimate
            let phase2_start = std::time::Instant::now();
            let task = chunk_task(0);
            let result = execute_task(&task, &self.inline_scratch);
            drop(task);
            self.timings.counting_seconds += phase2_start.elapsed().as_secs_f64();
            self.reduce(&result);
            self.spare_deltas.push(deltas_arc);
            // The task's Arc handles are gone, so the batch buffers are
            // uniquely owned again and can stage the next batch.
            if let Ok(mut elements) = Arc::try_unwrap(elements) {
                elements.clear();
                self.spare_elements.push(elements);
            }
            if let Ok(mut triplets) = Arc::try_unwrap(triplets) {
                triplets.clear();
                self.spare_triplets.push(triplets);
            }
            return;
        }

        // lint:allow(determinism): dispatch timing feeds the diagnostic timings report only, never an estimate
        let dispatch_start = std::time::Instant::now();
        let pool = self
            .pool
            .get_or_insert_with(|| CountingPool::new(self.config.threads));
        for chunk_index in 0..threads {
            pool.submit(chunk_task(chunk_index));
        }
        self.timings.counting_seconds += dispatch_start.elapsed().as_secs_f64();
        self.in_flight.push_back(InFlightBatch {
            id: batch_id,
            chunks: threads,
            sample: Arc::clone(&self.sample),
            deltas: deltas_arc,
            elements,
            triplets,
        });

        // Keep at most `pipeline_depth` batches open: with depth 1 this
        // collects the batch just dispatched (the paper's alternating
        // schedule); with depth 2 the next flush_batch call runs phase 1
        // while this batch is still being counted.
        while self.in_flight.len() >= self.config.pipeline_depth {
            self.collect_oldest();
        }
    }
}

impl ButterflyCounter for ParAbacus {
    fn process(&mut self, element: StreamElement) {
        self.buffer.push(element);
        if self.buffer.len() >= self.config.batch_size {
            self.flush_batch();
        }
    }

    /// One pull of the source drivers stages exactly one mini-batch.
    fn preferred_chunk(&self) -> usize {
        self.config.batch_size
    }

    fn estimate(&self) -> f64 {
        self.estimate
    }

    fn finish(&mut self) -> f64 {
        self.flush();
        self.estimate
    }

    fn memory_edges(&self) -> usize {
        // Honest accounting, mirroring `Abacus::memory_edges`: buffered
        // elements, sampled edges, plus the edge equivalents of the memoised
        // sorted copies and the CSR snapshot arenas.
        let aux = self.sample.sorted_cache_entries()
            + self
                .snapshot
                .as_deref()
                .map_or(0, CsrSnapshot::resident_entries);
        self.sample.len() + self.buffer.len() + entries_to_edge_equivalents(aux)
    }

    fn name(&self) -> &'static str {
        "PARABACUS"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    /// Serializes the estimator after a full [`flush`](Self::flush):
    /// buffered elements become part of the persisted state (as a short
    /// mini-batch) and the pipeline drains, so the payload is a pure function
    /// of the elements processed — no in-flight work to capture.
    ///
    /// Flushing at save time changes *where* batch boundaries fall, which is
    /// why the recovery harness drives reference and interrupted runs through
    /// the same checkpoint cadence: both flush at the same element indices,
    /// so batch boundaries — and therefore RNG draws and estimates — stay
    /// bit-aligned.  The ephemeral double-buffers, the worker pool, and the
    /// wall-clock timings are deliberately not serialized (they never affect
    /// results); the CSR snapshot is rebuilt from the restored sample.
    fn save_state(&mut self) -> Result<Vec<u8>, PersistError> {
        self.flush();
        if let Some(snapshot) = &mut self.snapshot {
            Arc::make_mut(snapshot).compact();
        }
        let mut enc = Encoder::new();
        enc.put_usize(self.config.budget);
        enc.put_u64(self.config.seed);
        enc.put_usize(self.config.batch_size);
        enc.put_usize(self.config.threads);
        enc.put_usize(self.config.pipeline_depth);
        enc.put_u8(u8::from(self.snapshot.is_some()));
        let state = self.policy.state();
        enc.put_usize(state.live_items);
        enc.put_usize(state.bad_deletions);
        enc.put_usize(state.good_deletions);
        for word in self.rng.state() {
            enc.put_u64(word);
        }
        self.sample.encode_state(&mut enc);
        enc.put_u64(self.replayed_ops);
        enc.put_u64(self.density_marker.0);
        enc.put_u64(self.density_marker.1);
        enc.put_f64(self.estimate);
        crate::persist::encode_stats(&mut enc, &self.stats);
        enc.put_usize(self.thread_comparisons.len());
        for &comparisons in &self.thread_comparisons {
            enc.put_u64(comparisons);
        }
        enc.put_u64(self.batches);
        Ok(enc.finish())
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), PersistError> {
        let mut dec = Decoder::new(state);
        let budget = dec.get_usize()?;
        let seed = dec.get_u64()?;
        let batch_size = dec.get_usize()?;
        let threads = dec.get_usize()?;
        let pipeline_depth = dec.get_usize()?;
        if budget != self.config.budget
            || seed != self.config.seed
            || batch_size != self.config.batch_size
            || threads != self.config.threads
            || pipeline_depth != self.config.pipeline_depth
        {
            return Err(PersistError::Corrupt(
                "PARABACUS snapshot was written under a different configuration".into(),
            ));
        }
        // Snapshot presence is *state* under `Auto` (decided per batch), not
        // configuration — apply it rather than checking it.
        let snapshot_present = dec.get_u8()? != 0;
        let triplet = RandomPairingState {
            live_items: dec.get_usize()?,
            bad_deletions: dec.get_usize()?,
            good_deletions: dec.get_usize()?,
        };
        self.policy = RandomPairing::from_state(self.config.budget, triplet);
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = dec.get_u64()?;
        }
        self.rng = StdRng::from_state(rng_state);
        Arc::make_mut(&mut self.sample).restore_state(&mut dec)?;
        self.replayed_ops = dec.get_u64()?;
        self.density_marker = (dec.get_u64()?, dec.get_u64()?);
        self.estimate = dec.get_f64()?;
        self.stats = crate::persist::decode_stats(&mut dec)?;
        let workloads = dec.get_usize()?;
        if workloads != self.thread_comparisons.len() {
            return Err(PersistError::Corrupt(format!(
                "PARABACUS snapshot records {workloads} worker workloads, this estimator has {}",
                self.thread_comparisons.len()
            )));
        }
        for comparisons in &mut self.thread_comparisons {
            *comparisons = dec.get_u64()?;
        }
        self.batches = dec.get_u64()?;
        dec.expect_end()?;
        self.snapshot = snapshot_present.then(|| {
            Arc::new(CsrSnapshot::from_edges(
                self.sample.edges().iter().copied(),
                self.config.kernel,
            ))
        });
        self.buffer.clear();
        self.spare_sample = None;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abacus::Abacus;
    use crate::config::AbacusConfig;
    use abacus_graph::Edge;
    use abacus_stream::generators::random::uniform_bipartite;
    use abacus_stream::{final_graph, inject_deletions_fast, DeletionConfig};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dynamic_stream(seed: u64, edges: usize, alpha: f64) -> Vec<StreamElement> {
        let base = uniform_bipartite(120, 120, edges, &mut StdRng::seed_from_u64(seed));
        inject_deletions_fast(
            &base,
            DeletionConfig::new(alpha),
            &mut StdRng::seed_from_u64(seed ^ 0xDEAD),
        )
    }

    fn assert_close(a: f64, b: f64) {
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= 1e-9 * scale,
            "estimates differ: {a} vs {b}"
        );
    }

    /// Theorem 5: PARABACUS produces the same counts as ABACUS after each
    /// mini-batch (same seed, same budget), for the alternating schedule
    /// (depth 1) and every pipelined depth alike.
    #[test]
    fn matches_sequential_abacus_exactly() {
        let stream = dynamic_stream(1, 4_000, 0.2);
        for &(batch, threads, depth) in &[
            (1usize, 1usize, 1usize),
            (64, 1, 2),
            (128, 4, 1),
            (128, 4, 2),
            (500, 8, 2),
            (500, 8, 4),
            (997, 3, 3),
        ] {
            let mut seq = Abacus::new(AbacusConfig::new(256).with_seed(9));
            seq.process_stream(&stream);

            let mut par = ParAbacus::new(
                ParAbacusConfig::new(256)
                    .with_seed(9)
                    .with_batch_size(batch)
                    .with_threads(threads)
                    .with_pipeline_depth(depth),
            );
            par.process_stream(&stream);

            let label = format!("batch {batch}, threads {threads}, depth {depth}");
            assert_close(seq.estimate(), par.estimate());
            assert_eq!(par.in_flight_batches(), 0, "{label}");
            // Sampled state is identical; `memory_edges` itself may differ by
            // the lazily built sorted caches each code path happened to touch.
            assert_eq!(seq.sample().len(), par.sample().len(), "{label}");
            assert_eq!(
                seq.sampler_state(),
                par.sampler_state(),
                "sampler state must match for {label}"
            );
            // The total work is identical; only its distribution differs.
            assert_eq!(
                seq.stats().discovered_butterflies,
                par.stats().discovered_butterflies,
                "{label}"
            );
            assert_eq!(seq.stats().comparisons, par.stats().comparisons, "{label}");
        }
    }

    /// A snapshot taken mid-stream restores into a fresh estimator that then
    /// finishes the stream bit-identically to a reference run — provided the
    /// reference also checkpoints at the same element index, because
    /// `save_state` flushes and flushing moves batch boundaries.
    #[test]
    fn save_restore_mid_stream_is_bit_identical() {
        use crate::config::SnapshotMode;
        let stream = dynamic_stream(3, 2_000, 0.2);
        let cut = 1234;
        for &(threads, depth, snapshot) in &[
            (1usize, 1usize, SnapshotMode::Off),
            (1, 3, SnapshotMode::On),
            (2, 2, SnapshotMode::Auto),
            (2, 4, SnapshotMode::On),
        ] {
            let config = ParAbacusConfig::new(256)
                .with_seed(11)
                .with_batch_size(96)
                .with_threads(threads)
                .with_pipeline_depth(depth)
                .with_snapshot(snapshot);
            let label = format!("threads {threads}, depth {depth}, snapshot {snapshot:?}");

            // Reference run: checkpoint at the cut (flush included), continue.
            let mut reference = ParAbacus::new(config);
            reference.process_stream(&stream[..cut]);
            let payload = reference.save_state().expect("save must succeed");
            reference.process_stream(&stream[cut..]);
            reference.flush();

            // Interrupted run: fresh estimator restored from the payload.
            let mut resumed = ParAbacus::new(config);
            resumed
                .restore_state(&payload)
                .expect("restore must succeed");
            resumed.process_stream(&stream[cut..]);
            resumed.flush();

            assert_eq!(
                reference.estimate().to_bits(),
                resumed.estimate().to_bits(),
                "{label}"
            );
            assert_eq!(
                reference.sampler_state(),
                resumed.sampler_state(),
                "{label}"
            );
            assert_eq!(reference.memory_edges(), resumed.memory_edges(), "{label}");
            assert_eq!(
                reference.stats().comparisons,
                resumed.stats().comparisons,
                "{label}"
            );
            assert_eq!(
                reference.save_state().unwrap(),
                resumed.save_state().unwrap(),
                "re-saved payloads must be byte-identical for {label}"
            );
        }
    }

    /// Restore refuses payloads written under different engine knobs: every
    /// fingerprint field is load-bearing for replay determinism.
    #[test]
    fn restore_rejects_other_configurations() {
        let stream = dynamic_stream(5, 400, 0.2);
        let base = ParAbacusConfig::new(128)
            .with_seed(2)
            .with_batch_size(64)
            .with_threads(2)
            .with_pipeline_depth(2);
        let mut source = ParAbacus::new(base);
        source.process_stream(&stream);
        let payload = source.save_state().unwrap();

        for other in [
            ParAbacusConfig::new(64)
                .with_seed(2)
                .with_batch_size(64)
                .with_threads(2)
                .with_pipeline_depth(2),
            base.with_seed(3),
            base.with_batch_size(65),
            base.with_threads(3),
            base.with_pipeline_depth(1),
        ] {
            let mut target = ParAbacus::new(other);
            assert!(
                matches!(
                    target.restore_state(&payload),
                    Err(PersistError::Corrupt(_))
                ),
                "fingerprint mismatch must be rejected"
            );
        }

        // Truncated payload fails closed too.
        let mut target = ParAbacus::new(base);
        assert!(target.restore_state(&payload[..payload.len() - 3]).is_err());
    }

    /// The frozen-snapshot ablation: with identical seeds, snapshot-backed
    /// and hash-backed counting produce the same estimates (bit-equal at one
    /// thread), identical comparisons, and a snapshot in lock-step with the
    /// live sample, across pipeline depths.
    #[test]
    fn snapshot_backing_is_an_exact_ablation() {
        use crate::config::SnapshotMode;
        let stream = dynamic_stream(21, 3_000, 0.2);
        for &(threads, depth) in &[(1usize, 1usize), (1, 3), (4, 2)] {
            let base = ParAbacusConfig::new(300)
                .with_seed(8)
                .with_batch_size(128)
                .with_threads(threads)
                .with_pipeline_depth(depth);
            let mut with = ParAbacus::new(base.with_snapshot(SnapshotMode::On));
            let mut without = ParAbacus::new(base.with_snapshot(SnapshotMode::Off));
            with.process_stream(&stream);
            without.process_stream(&stream);
            if threads == 1 {
                assert_eq!(
                    with.estimate().to_bits(),
                    without.estimate().to_bits(),
                    "threads {threads}, depth {depth}"
                );
            } else {
                assert_close(with.estimate(), without.estimate());
            }
            assert_eq!(with.stats().comparisons, without.stats().comparisons);
            assert_eq!(with.sampler_state(), without.sampler_state());
            assert_eq!(
                with.snapshot().expect("snapshot enabled").num_edges(),
                with.sample().len(),
                "snapshot fell out of lock-step (threads {threads}, depth {depth})"
            );
            assert!(without.snapshot().is_none());
        }
    }

    /// The pipeline defers reduction, never correctness: while batches are in
    /// flight the estimate lags, and `flush` fully synchronises it.
    #[test]
    fn pipelined_estimates_synchronise_on_flush() {
        let stream = dynamic_stream(7, 2_000, 0.2);
        let mut par = ParAbacus::new(
            ParAbacusConfig::new(10_000)
                .with_seed(0)
                .with_batch_size(64)
                .with_threads(4)
                .with_pipeline_depth(3),
        );
        let mut seen_in_flight = 0usize;
        for element in &stream {
            par.process(*element);
            seen_in_flight = seen_in_flight.max(par.in_flight_batches());
            assert!(par.in_flight_batches() <= 2); // depth - 1
        }
        assert!(seen_in_flight > 0, "pipeline never filled");
        par.flush();
        assert_eq!(par.in_flight_batches(), 0);
        let truth = abacus_graph::count_butterflies(&final_graph(&stream)) as f64;
        assert!((par.estimate() - truth).abs() < 1e-6);
        // A second flush is a no-op.
        par.flush();
        assert!((par.estimate() - truth).abs() < 1e-6);
    }

    /// `finish` processes the partial batch, drains the pipeline, and returns
    /// an estimate consistent with sequential ABACUS over the same stream.
    #[test]
    fn finish_flushes_partial_batches_and_matches_abacus() {
        let stream = dynamic_stream(11, 1_503, 0.15); // not a batch multiple
        let mut seq = Abacus::new(AbacusConfig::new(128).with_seed(4));
        seq.process_stream(&stream);

        let mut par = ParAbacus::new(
            ParAbacusConfig::new(128)
                .with_seed(4)
                .with_batch_size(250)
                .with_threads(4)
                .with_pipeline_depth(2),
        );
        for element in &stream {
            par.process(*element);
        }
        assert!(par.pending_elements() > 0, "stream must end mid-batch");
        let final_estimate = par.finish();
        assert_close(seq.estimate(), final_estimate);
        assert_close(par.estimate(), final_estimate);
        assert_eq!(par.pending_elements(), 0);
        assert_eq!(par.in_flight_batches(), 0);
        assert_eq!(seq.stats().comparisons, par.stats().comparisons);
    }

    /// Regression: dropping an estimator with a non-empty buffer (and batches
    /// still in flight) must neither hang nor panic — the pending work is
    /// discarded and the worker threads are joined.
    #[test]
    fn dropping_with_pending_work_is_safe() {
        let stream = dynamic_stream(13, 1_000, 0.2);
        let mut par = ParAbacus::new(
            ParAbacusConfig::new(5_000)
                .with_seed(0)
                .with_batch_size(300)
                .with_threads(4)
                .with_pipeline_depth(4),
        );
        for element in &stream {
            par.process(*element);
        }
        assert!(par.pending_elements() > 0 || par.in_flight_batches() > 0);
        drop(par); // must return promptly without counting the pending work
    }

    #[test]
    fn estimate_is_exact_when_budget_covers_stream() {
        let stream = dynamic_stream(3, 1_500, 0.25);
        let truth = abacus_graph::count_butterflies(&final_graph(&stream)) as f64;
        let mut par = ParAbacus::new(
            ParAbacusConfig::new(10_000)
                .with_seed(0)
                .with_batch_size(100)
                .with_threads(6),
        );
        par.process_stream(&stream);
        assert!((par.estimate() - truth).abs() < 1e-6);
        assert_eq!(par.name(), "PARABACUS");
        assert!(par.batches_processed() >= 18);
        assert_eq!(par.pending_elements(), 0);
    }

    #[test]
    fn flush_makes_partial_batches_visible() {
        let mut par = ParAbacus::new(
            ParAbacusConfig::new(100)
                .with_seed(0)
                .with_batch_size(1_000)
                .with_threads(2),
        );
        for &(l, r) in &[(0u32, 10u32), (0, 11), (1, 10), (1, 11)] {
            par.process(StreamElement::insert(Edge::new(l, r)));
        }
        // Not flushed yet: the batch is smaller than the batch size.
        assert_eq!(par.estimate(), 0.0);
        assert_eq!(par.pending_elements(), 4);
        par.flush();
        assert_eq!(par.estimate(), 1.0);
        assert_eq!(par.pending_elements(), 0);
        // Second flush is a no-op.
        par.flush();
        assert_eq!(par.estimate(), 1.0);
    }

    #[test]
    fn thread_workloads_are_recorded_and_balanced() {
        let stream = dynamic_stream(5, 6_000, 0.2);
        let threads = 4;
        let mut par = ParAbacus::new(
            ParAbacusConfig::new(512)
                .with_seed(1)
                .with_batch_size(1_000)
                .with_threads(threads),
        );
        par.process_stream(&stream);
        let workloads = par.thread_workloads();
        assert_eq!(workloads.len(), threads);
        let total: u64 = workloads.iter().sum();
        assert_eq!(total, par.stats().comparisons);
        assert!(total > 0, "expected some intersection work");
        // Load balance: no thread does more than twice the ideal share.
        let ideal = total as f64 / threads as f64;
        for (i, &w) in workloads.iter().enumerate() {
            assert!(
                (w as f64) < 2.5 * ideal + 1_000.0,
                "thread {i} overloaded: {w} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn memory_counts_buffered_elements() {
        let mut par = ParAbacus::new(ParAbacusConfig::new(8).with_batch_size(100));
        for i in 0..10u32 {
            par.process(StreamElement::insert(Edge::new(i, i)));
        }
        assert_eq!(par.memory_edges(), 10); // all buffered, none sampled yet
        par.flush();
        assert!(par.memory_edges() <= 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Parity with sequential ABACUS holds for arbitrary batch sizes,
        /// thread counts, pipeline depths, budgets and deletion ratios.
        #[test]
        fn parity_with_abacus(
            seed in 0u64..1_000,
            budget in 8usize..200,
            batch in 1usize..300,
            threads in 1usize..8,
            depth in 1usize..5,
            alpha in 0.0f64..0.4,
        ) {
            let stream = dynamic_stream(seed, 800, alpha);
            let mut seq = Abacus::new(AbacusConfig::new(budget).with_seed(seed));
            seq.process_stream(&stream);
            let mut par = ParAbacus::new(
                ParAbacusConfig::new(budget)
                    .with_seed(seed)
                    .with_batch_size(batch)
                    .with_threads(threads)
                    .with_pipeline_depth(depth),
            );
            par.process_stream(&stream);
            let scale = seq.estimate().abs().max(1.0);
            prop_assert!((seq.estimate() - par.estimate()).abs() <= 1e-9 * scale);
            prop_assert_eq!(seq.sampler_state(), par.sampler_state());
        }
    }
}
