//! PARABACUS: mini-batch parallel butterfly counting (§V of the paper).
//!
//! ABACUS's workflow (count, then update the sample) is inverted per
//! mini-batch:
//!
//! 1. **Sequential sample-version creation** — the Random Pairing updates of
//!    all `M` edges in the batch are applied one after the other to the live
//!    sample; for every edge the pre-update bookkeeping triplet
//!    `{|E|, c_b, c_g}` is cached and every adjacency change is recorded as a
//!    versioned delta ([`versioned`]).
//! 2. **Parallel per-edge counting** — the batch is split into `p` equal
//!    chunks; each worker thread counts, for each of its edges, the
//!    butterflies the edge forms with *its* sample version (reconstructed
//!    through a [`VersionView`]) and extrapolates with the increment computed
//!    from the cached triplet.
//! 3. **Reduction and consolidation** — the partial counts are summed into the
//!    running estimate; the live sample is already the consolidated final
//!    version and the delta log is cleared for the next batch.
//!
//! Because the sample transitions (and RNG draws) are identical to sequential
//! ABACUS and the per-edge counts are computed against identical sample
//! states, PARABACUS returns exactly the same estimates after every batch
//! (Theorem 5); the tests assert this bit-for-bit up to floating-point
//! summation order.

mod pool;
pub mod versioned;

use crate::config::ParAbacusConfig;
use crate::counter::ButterflyCounter;
use crate::sample_graph::SampleGraph;
use crate::stats::ProcessingStats;
use abacus_sampling::{RandomPairing, RandomPairingState};
use abacus_stream::{EdgeDelta, StreamElement};
use pool::{execute_task, CountTask, CountingPool};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use versioned::{RecordingSample, VersionedDeltas};

/// The mini-batch parallel PARABACUS estimator.
#[derive(Debug)]
pub struct ParAbacus {
    config: ParAbacusConfig,
    sample: Arc<SampleGraph>,
    policy: RandomPairing,
    rng: StdRng,
    estimate: f64,
    buffer: Vec<StreamElement>,
    deltas: Arc<VersionedDeltas>,
    stats: ProcessingStats,
    thread_comparisons: Vec<u64>,
    batches: u64,
    pool: Option<CountingPool>,
    timings: PhaseTimings,
}

/// Wall-clock time spent in each phase of the mini-batch workflow, summed
/// over all flushed batches.
///
/// Phase 1 is inherently sequential (Random Pairing updates + delta
/// recording), phase 2 is the parallel per-edge counting (including worker
/// dispatch and result collection); useful for explaining where the speedup
/// curves of Figs. 8–9 saturate (Amdahl's law on phase 1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimings {
    /// Seconds spent creating sample versions sequentially (phase 1).
    pub sequential_seconds: f64,
    /// Seconds spent in parallel per-edge counting (phase 2, wall clock).
    pub counting_seconds: f64,
}

impl ParAbacus {
    /// Creates an estimator from a configuration.
    #[must_use]
    pub fn new(config: ParAbacusConfig) -> Self {
        ParAbacus {
            config,
            sample: Arc::new(SampleGraph::with_budget(config.budget)),
            policy: RandomPairing::new(config.budget),
            rng: StdRng::seed_from_u64(config.seed),
            estimate: 0.0,
            buffer: Vec::with_capacity(config.batch_size),
            deltas: Arc::new(VersionedDeltas::new()),
            stats: ProcessingStats::default(),
            thread_comparisons: vec![0; config.threads],
            batches: 0,
            pool: None,
            timings: PhaseTimings::default(),
        }
    }

    /// Cumulative per-phase wall-clock timings over all flushed batches.
    #[must_use]
    pub fn phase_timings(&self) -> PhaseTimings {
        self.timings
    }

    /// The configuration this estimator was built with.
    #[must_use]
    pub fn config(&self) -> ParAbacusConfig {
        self.config
    }

    /// The current sample (read-only; reflects only flushed batches).
    #[must_use]
    pub fn sample(&self) -> &SampleGraph {
        &self.sample
    }

    /// The Random Pairing bookkeeping triplet after the last flushed batch.
    #[must_use]
    pub fn sampler_state(&self) -> RandomPairingState {
        self.policy.state()
    }

    /// Work counters accumulated over all flushed batches.
    #[must_use]
    pub fn stats(&self) -> ProcessingStats {
        self.stats
    }

    /// Cumulative set-intersection membership checks performed by each worker
    /// thread (the per-thread workload of Fig. 10).
    #[must_use]
    pub fn thread_workloads(&self) -> &[u64] {
        &self.thread_comparisons
    }

    /// Number of mini-batches processed so far.
    #[must_use]
    pub fn batches_processed(&self) -> u64 {
        self.batches
    }

    /// Number of elements buffered but not yet counted.
    #[must_use]
    pub fn pending_elements(&self) -> usize {
        self.buffer.len()
    }

    /// Processes any buffered elements as a (possibly short) mini-batch.
    ///
    /// [`ButterflyCounter::process_stream`] calls this automatically at the
    /// end of the stream; call it manually whenever an up-to-date estimate is
    /// needed mid-stream.
    pub fn flush(&mut self) {
        if self.buffer.is_empty() {
            return;
        }
        self.flush_batch();
    }

    fn flush_batch(&mut self) {
        let batch: Vec<StreamElement> = std::mem::take(&mut self.buffer);
        let m = batch.len();
        self.batches += 1;
        let phase1_start = std::time::Instant::now();

        // --- Phase 1: sequential sample-version creation. ------------------
        // Cache the pre-update triplet of every edge and record the deltas its
        // update applies to the live sample.  Outside a batch the estimator is
        // the only holder of the sample/delta Arcs (the pool workers drop
        // their handles before reporting), so `make_mut` mutates in place.
        let sample = Arc::make_mut(&mut self.sample);
        let deltas = Arc::make_mut(&mut self.deltas);
        deltas.clear();
        let mut triplets: Vec<RandomPairingState> = Vec::with_capacity(m);
        for (position, element) in batch.iter().enumerate() {
            triplets.push(self.policy.state());
            let mut recorder = RecordingSample::new(sample, deltas, position as u32);
            match element.delta {
                EdgeDelta::Insert => {
                    self.policy
                        .insert(element.edge, &mut recorder, &mut self.rng);
                }
                EdgeDelta::Delete => {
                    self.policy.delete(&element.edge, &mut recorder);
                }
            }
        }

        // Freeze the delta log against the post-batch sample: one indexing
        // pass per touched vertex makes every versioned probe in phase 2 a
        // binary search.
        deltas.seal(sample);
        self.timings.sequential_seconds += phase1_start.elapsed().as_secs_f64();
        let phase2_start = std::time::Instant::now();

        // --- Phase 2: parallel per-edge counting. ---------------------------
        let threads = self.config.threads.min(m).max(1);
        let chunk_size = m.div_ceil(threads);
        let batch = Arc::new(batch);
        let triplets = Arc::new(triplets);
        let chunk_task = |chunk_index: usize| CountTask {
            sample: Arc::clone(&self.sample),
            deltas: Arc::clone(&self.deltas),
            batch: Arc::clone(&batch),
            triplets: Arc::clone(&triplets),
            range: (chunk_index * chunk_size)..((chunk_index + 1) * chunk_size).min(m),
            chunk_index,
            budget: self.config.budget,
        };

        let results = if threads == 1 {
            vec![execute_task(&chunk_task(0))]
        } else {
            let pool = self
                .pool
                .get_or_insert_with(|| CountingPool::new(self.config.threads));
            for chunk_index in 0..threads {
                pool.submit(chunk_task(chunk_index));
            }
            pool.collect(threads)
        };
        self.timings.counting_seconds += phase2_start.elapsed().as_secs_f64();

        // --- Phase 3: reduction. --------------------------------------------
        for result in results {
            self.estimate += result.partial;
            self.stats.merge(&result.stats);
            self.thread_comparisons[result.chunk_index % self.config.threads] +=
                result.stats.comparisons;
        }
        // Version consolidation: the live sample already contains all batch
        // updates; dropping the delta log makes it the 0-th version of the
        // next mini-batch.
        Arc::make_mut(&mut self.deltas).clear();
    }
}

impl ButterflyCounter for ParAbacus {
    fn process(&mut self, element: StreamElement) {
        self.buffer.push(element);
        if self.buffer.len() >= self.config.batch_size {
            self.flush_batch();
        }
    }

    fn process_stream(&mut self, stream: &[StreamElement]) {
        for element in stream {
            self.process(*element);
        }
        self.flush();
    }

    fn estimate(&self) -> f64 {
        self.estimate
    }

    fn memory_edges(&self) -> usize {
        self.sample.len() + self.buffer.len()
    }

    fn name(&self) -> &'static str {
        "PARABACUS"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abacus::Abacus;
    use crate::config::AbacusConfig;
    use abacus_graph::Edge;
    use abacus_stream::generators::random::uniform_bipartite;
    use abacus_stream::{final_graph, inject_deletions_fast, DeletionConfig};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dynamic_stream(seed: u64, edges: usize, alpha: f64) -> Vec<StreamElement> {
        let base = uniform_bipartite(120, 120, edges, &mut StdRng::seed_from_u64(seed));
        inject_deletions_fast(
            &base,
            DeletionConfig::new(alpha),
            &mut StdRng::seed_from_u64(seed ^ 0xDEAD),
        )
    }

    fn assert_close(a: f64, b: f64) {
        let scale = a.abs().max(b.abs()).max(1.0);
        assert!(
            (a - b).abs() <= 1e-9 * scale,
            "estimates differ: {a} vs {b}"
        );
    }

    /// Theorem 5: PARABACUS produces the same counts as ABACUS after each
    /// mini-batch (same seed, same budget).
    #[test]
    fn matches_sequential_abacus_exactly() {
        let stream = dynamic_stream(1, 4_000, 0.2);
        for &(batch, threads) in &[(1usize, 1usize), (64, 1), (128, 4), (500, 8), (997, 3)] {
            let mut seq = Abacus::new(AbacusConfig::new(256).with_seed(9));
            seq.process_stream(&stream);

            let mut par = ParAbacus::new(
                ParAbacusConfig::new(256)
                    .with_seed(9)
                    .with_batch_size(batch)
                    .with_threads(threads),
            );
            par.process_stream(&stream);

            assert_close(seq.estimate(), par.estimate());
            assert_eq!(seq.memory_edges(), par.memory_edges(), "batch {batch}");
            assert_eq!(
                seq.sampler_state(),
                par.sampler_state(),
                "sampler state must match for batch size {batch}"
            );
            // The total work is identical; only its distribution differs.
            assert_eq!(
                seq.stats().discovered_butterflies,
                par.stats().discovered_butterflies
            );
            assert_eq!(seq.stats().comparisons, par.stats().comparisons);
        }
    }

    #[test]
    fn estimate_is_exact_when_budget_covers_stream() {
        let stream = dynamic_stream(3, 1_500, 0.25);
        let truth = abacus_graph::count_butterflies(&final_graph(&stream)) as f64;
        let mut par = ParAbacus::new(
            ParAbacusConfig::new(10_000)
                .with_seed(0)
                .with_batch_size(100)
                .with_threads(6),
        );
        par.process_stream(&stream);
        assert!((par.estimate() - truth).abs() < 1e-6);
        assert_eq!(par.name(), "PARABACUS");
        assert!(par.batches_processed() >= 18);
        assert_eq!(par.pending_elements(), 0);
    }

    #[test]
    fn flush_makes_partial_batches_visible() {
        let mut par = ParAbacus::new(
            ParAbacusConfig::new(100)
                .with_seed(0)
                .with_batch_size(1_000)
                .with_threads(2),
        );
        for &(l, r) in &[(0u32, 10u32), (0, 11), (1, 10), (1, 11)] {
            par.process(StreamElement::insert(Edge::new(l, r)));
        }
        // Not flushed yet: the batch is smaller than the batch size.
        assert_eq!(par.estimate(), 0.0);
        assert_eq!(par.pending_elements(), 4);
        par.flush();
        assert_eq!(par.estimate(), 1.0);
        assert_eq!(par.pending_elements(), 0);
        // Second flush is a no-op.
        par.flush();
        assert_eq!(par.estimate(), 1.0);
    }

    #[test]
    fn thread_workloads_are_recorded_and_balanced() {
        let stream = dynamic_stream(5, 6_000, 0.2);
        let threads = 4;
        let mut par = ParAbacus::new(
            ParAbacusConfig::new(512)
                .with_seed(1)
                .with_batch_size(1_000)
                .with_threads(threads),
        );
        par.process_stream(&stream);
        let workloads = par.thread_workloads();
        assert_eq!(workloads.len(), threads);
        let total: u64 = workloads.iter().sum();
        assert_eq!(total, par.stats().comparisons);
        assert!(total > 0, "expected some intersection work");
        // Load balance: no thread does more than twice the ideal share.
        let ideal = total as f64 / threads as f64;
        for (i, &w) in workloads.iter().enumerate() {
            assert!(
                (w as f64) < 2.5 * ideal + 1_000.0,
                "thread {i} overloaded: {w} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn memory_counts_buffered_elements() {
        let mut par = ParAbacus::new(ParAbacusConfig::new(8).with_batch_size(100));
        for i in 0..10u32 {
            par.process(StreamElement::insert(Edge::new(i, i)));
        }
        assert_eq!(par.memory_edges(), 10); // all buffered, none sampled yet
        par.flush();
        assert!(par.memory_edges() <= 8);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Parity with sequential ABACUS holds for arbitrary batch sizes,
        /// thread counts, budgets and deletion ratios.
        #[test]
        fn parity_with_abacus(
            seed in 0u64..1_000,
            budget in 8usize..200,
            batch in 1usize..300,
            threads in 1usize..8,
            alpha in 0.0f64..0.4,
        ) {
            let stream = dynamic_stream(seed, 800, alpha);
            let mut seq = Abacus::new(AbacusConfig::new(budget).with_seed(seed));
            seq.process_stream(&stream);
            let mut par = ParAbacus::new(
                ParAbacusConfig::new(budget)
                    .with_seed(seed)
                    .with_batch_size(batch)
                    .with_threads(threads),
            );
            par.process_stream(&stream);
            let scale = seq.estimate().abs().max(1.0);
            prop_assert!((seq.estimate() - par.estimate()).abs() <= 1e-9 * scale);
            prop_assert_eq!(seq.sampler_state(), par.sampler_state());
        }
    }
}
