//! Versioned sample views for mini-batch processing.
//!
//! PARABACUS first replays the sample updates of a whole mini-batch
//! sequentially (cheap, O(1) amortised per edge) while *recording the deltas*
//! each update applies to the sample.  Afterwards the per-edge butterfly
//! counting for edge `i` of the batch must see the sample exactly as it was
//! before edge `i`'s own update — the *i-th version* `S_i` of the paper —
//! even though the physical sample has already advanced to the post-batch
//! state.
//!
//! Storing `M` full snapshots would cost O(M·k) memory; instead, only the
//! per-vertex discrepancies between consecutive versions are kept
//! (`VersionedDeltas`), and [`VersionView`] reconstructs any version on the
//! fly by *undoing* the deltas with a version tag greater than or equal to the
//! requested one.  This is exactly the "store only the discrepancies between
//! the neighboring sets of each vertex" design of §V-A.
//!
//! The delta log goes through two phases:
//!
//! 1. **Recording** (sequential, phase 1 of PARABACUS) — every adjacency
//!    change is appended to one flat `(vertex, change)` log in version order.
//! 2. **Sealed** (parallel, phase 2) — [`VersionedDeltas::seal`] groups the
//!    flat log by vertex (a stable sort, so each vertex's changes stay in
//!    version order) and builds two query indexes per touched vertex:
//!    * *degree suffix sums* so the degree of a vertex at any version is one
//!      binary search away from its live degree, and
//!    * *override intervals* — for every `(vertex, neighbor)` pair whose
//!      historic state in some version range differs from the final live
//!      sample, the range `[lo, hi]` of versions and the historic presence.
//!      Intervals that agree with the live sample are pruned, so membership
//!      probes fall through to the live sample for free and neighbor
//!      iteration only pays for genuinely resurrected pairs.
//!
//!    This keeps every versioned probe within a small constant factor of the
//!    corresponding live-sample probe, which is what preserves the paper's
//!    speedup shape (Figs. 8–9).
//!
//! Both indexes live in two arenas shared across all vertices of the batch
//! (`degree_suffix`, `overrides`), with a per-vertex map holding only `Copy`
//! range descriptors into them.  [`clear`](VersionedDeltas::clear) therefore
//! never frees per-vertex vectors: every batch reuses the previous batch's
//! arena capacity, and the steady-state sealing pass performs no allocation
//! beyond the sort's scratch.  The phase-2 read side has the same property:
//! [`ViewScratch`] pools the small per-intersection override buffers so a
//! worker thread stops paying one malloc/free pair per resolved vertex.

use crate::sample_graph::SampleGraph;
use abacus_graph::adjacency::AdjacencySet;
use abacus_graph::csr::CsrSnapshot;
use abacus_graph::{Edge, FxHashMap, NeighborhoodView, VertexRef};
use abacus_sampling::SampleStore;
use rand::Rng;
use std::cell::RefCell;
use std::ops::Range;

/// One recorded adjacency change: at version `version`, `neighbor` was added
/// to (or removed from) the neighbor set of the owning vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DeltaEntry {
    /// The neighbor on the opposite side.
    neighbor: u32,
    /// The batch position whose sample update produced this change.  The
    /// change is *not yet visible* at versions `<= version`.
    version: u32,
    /// `true` for an addition, `false` for a removal.
    added: bool,
}

/// A version range in which a pair's historic state differs from the final
/// live sample: for every view version `t` with `lo <= t <= hi`, the pair
/// `(owner, neighbor)` was `present` (and the live sample says otherwise).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OverrideInterval {
    neighbor: u32,
    lo: u32,
    hi: u32,
    present: bool,
}

/// Where one vertex's sealed indexes live inside the shared arenas.
///
/// Keeping only `Copy` ranges in the per-vertex map (instead of per-vertex
/// vectors) is what lets [`VersionedDeltas::clear`] retain every allocation
/// across batches.
#[derive(Debug, Clone, Copy)]
struct VertexRanges {
    /// `degree_suffix` arena slice, ascending version order.
    ds_start: u32,
    ds_end: u32,
    /// `overrides` arena slice, sorted by `(neighbor, lo)`.
    ov_start: u32,
    ov_end: u32,
}

/// One vertex's sealed query indexes, borrowed out of the shared arenas.
#[derive(Debug, Clone, Copy)]
struct VertexLogRef<'a> {
    /// `(version, suffix)` pairs in ascending version order, where `suffix` is
    /// the net degree change contributed by this entry and everything after
    /// it.  The vertex's degree at version `t` is its live degree minus the
    /// suffix of the first entry with `version >= t`.
    degree_suffix: &'a [(u32, i32)],
    /// Override intervals sorted by `(neighbor, lo)`, pruned to those whose
    /// historic state differs from the live sample.
    overrides: &'a [OverrideInterval],
}

/// Words in the touched-vertex prefilter (8192 bits = 1 KiB, hot in L1).
const FILTER_WORDS: usize = 128;

/// Per-vertex log of the adjacency changes applied during one mini-batch.
///
/// Besides the per-vertex query indexes, the log keeps the batch's edge-level
/// operations in application order ([`replay_onto`](Self::replay_onto)): the
/// pipelined PARABACUS engine uses it to bring a stale double-buffered sample
/// copy up to date in O(batch) instead of re-cloning the whole sample.
#[derive(Debug, Clone)]
pub struct VersionedDeltas {
    /// `(vertex, change)` pairs: appended in recording (version) order, then
    /// grouped by vertex in place when the log is sealed.
    recorded: Vec<(VertexRef, DeltaEntry)>,
    /// Edge-level `(edge, added)` operations in the exact order they were
    /// applied to the live sample.
    ops: Vec<(Edge, bool)>,
    recorded_ops: usize,
    sealed: bool,
    /// Bloom-style one-hash prefilter over the touched vertices, built by
    /// [`seal`](Self::seal).  The per-edge counting kernels ask "was this
    /// vertex touched by the batch?" several times per intersection; for the
    /// overwhelmingly common *no*, one L1-resident bit test replaces a hash
    /// map probe.  False positives merely fall through to the map.
    touched_filter: Box<[u64; FILTER_WORDS]>,
    /// Touched vertex → where its sealed indexes live in the arenas below.
    index: FxHashMap<VertexRef, VertexRanges>,
    /// Shared degree-suffix arena (see [`VertexLogRef::degree_suffix`]).
    degree_suffix: Vec<(u32, i32)>,
    /// Shared override-interval arena (see [`VertexLogRef::overrides`]).
    overrides: Vec<OverrideInterval>,
}

impl Default for VersionedDeltas {
    // A log is constructed once per spare-pool miss (the first
    // `pipeline_depth` batches); the coordinator recycles it through
    // `spare_deltas` forever after, and `clear()` keeps every capacity.
    fn default() -> Self {
        VersionedDeltas {
            recorded: Vec::new(), // lint:allow(hot-path-alloc): empty on construction; capacity accretes once and survives clear()
            ops: Vec::new(), // lint:allow(hot-path-alloc): empty on construction; capacity accretes once and survives clear()
            recorded_ops: 0,
            sealed: false,
            touched_filter: Box::new([0u64; FILTER_WORDS]), // lint:allow(hot-path-alloc): fixed 1 KiB prefilter, allocated once per recycled log
            index: FxHashMap::default(), // lint:allow(hot-path-alloc): empty on construction; capacity accretes once and survives clear()
            degree_suffix: Vec::new(), // lint:allow(hot-path-alloc): empty on construction; arena capacity survives clear()
            overrides: Vec::new(), // lint:allow(hot-path-alloc): empty on construction; arena capacity survives clear()
        }
    }
}

/// Word index and mask of a vertex's prefilter bit.
#[inline]
fn filter_slot(v: VertexRef) -> (usize, u64) {
    let side_bit = u64::from(matches!(v.side, abacus_graph::Side::Right));
    let x = (u64::from(v.id) << 1) | side_bit;
    let h = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let bit = (h >> 51) as usize; // top 13 bits → 8192 positions
    (bit >> 6, 1u64 << (bit & 63))
}

/// Total order over vertices for the seal-time grouping sort.
#[inline]
fn group_key(v: VertexRef) -> u64 {
    (u64::from(v.id) << 1) | u64::from(matches!(v.side, abacus_graph::Side::Right))
}

impl VersionedDeltas {
    /// Creates an empty delta log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of edge-level operations recorded (each touches two vertices).
    #[must_use]
    pub fn recorded_ops(&self) -> usize {
        self.recorded_ops
    }

    /// The batch's edge-level `(edge, added)` operations in application
    /// order — the same sequence [`replay_onto`](Self::replay_onto) applies
    /// to a stale sample buffer.  The pipelined engine also replays it onto
    /// the frozen CSR snapshot, which keeps snapshot maintenance O(batch)
    /// instead of O(sample).
    pub fn ops(&self) -> impl Iterator<Item = (Edge, bool)> + '_ {
        self.ops.iter().copied()
    }

    /// Whether [`seal`](Self::seal) has been called since the last mutation.
    #[must_use]
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Clears the log for the next mini-batch, keeping allocations.
    pub fn clear(&mut self) {
        // Every container holds Copy elements (the map's values are range
        // descriptors, not vectors), so clearing drops nothing and the next
        // batch records and seals into the retained capacity.
        self.recorded.clear();
        self.ops.clear();
        self.index.clear();
        self.degree_suffix.clear();
        self.overrides.clear();
        self.recorded_ops = 0;
        self.sealed = false;
    }

    /// Re-applies this batch's sample mutations, in order, to `sample`.
    ///
    /// `sample` must be in exactly the state the live sample had *before*
    /// this batch (the pipelined engine guarantees that by replaying batches
    /// in dispatch order onto the recycled buffer).  Afterwards `sample` is
    /// semantically — and, because [`SampleGraph`]'s mutations are
    /// deterministic in the operation sequence, structurally — identical to
    /// the live sample after this batch, so subsequent Random Pairing
    /// decisions (including random-victim eviction) are bit-for-bit the same
    /// as if they had run on the original buffer.
    pub fn replay_onto(&self, sample: &mut SampleGraph) {
        use abacus_sampling::SampleStore;
        for &(edge, added) in &self.ops {
            if added {
                sample.store_insert(edge);
            } else {
                let removed = sample.store_remove(&edge);
                debug_assert!(removed, "replay removed an edge that was not present");
            }
        }
    }

    /// Records that `edge` was added to / removed from the sample while
    /// processing batch position `version`.
    ///
    /// # Panics
    /// Panics if the log has already been sealed for querying.
    pub fn record(&mut self, version: u32, added: bool, edge: Edge) {
        assert!(!self.sealed, "cannot record into a sealed delta log");
        self.recorded_ops += 1;
        self.ops.push((edge, added));
        self.recorded.push((
            edge.left_ref(),
            DeltaEntry {
                neighbor: edge.right,
                version,
                added,
            },
        ));
        self.recorded.push((
            edge.right_ref(),
            DeltaEntry {
                neighbor: edge.left,
                version,
                added,
            },
        ));
    }

    /// Freezes the log and builds the per-vertex query indexes against the
    /// final (post-batch) state of the sample.
    ///
    /// Must be called once after the sequential recording pass and before any
    /// [`VersionView`] queries the log.  `live` must be the sample the deltas
    /// were recorded against, *after* all batch updates have been applied —
    /// exactly the state PARABACUS keeps between batches.
    pub fn seal(&mut self, live: &SampleGraph) {
        self.touched_filter.fill(0);
        self.index.clear();
        self.degree_suffix.clear();
        self.overrides.clear();
        // A *stable* sort groups each vertex's entries contiguously while
        // keeping them in recording (version) order within the group —
        // version order is what the index builders below rely on.
        self.recorded.sort_by_key(|&(v, _)| group_key(v));
        let mut i = 0;
        while i < self.recorded.len() {
            let vertex = self.recorded[i].0;
            let start = i;
            while i < self.recorded.len() && self.recorded[i].0 == vertex {
                i += 1;
            }
            let ranges = self.build_indexes(vertex, start..i, live);
            self.index.insert(vertex, ranges);
            let (word, mask) = filter_slot(vertex);
            self.touched_filter[word] |= mask;
        }
        self.sealed = true;
    }

    /// Builds one vertex's query indexes into the shared arenas from its
    /// contiguous `group` of recorded entries (in version order) and returns
    /// where they landed.
    fn build_indexes(
        &mut self,
        vertex: VertexRef,
        group: Range<usize>,
        live: &SampleGraph,
    ) -> VertexRanges {
        // Degree suffix sums from the entries in recorded (version) order.
        let ds_start = self.degree_suffix.len();
        let mut suffix = 0i32;
        for &(_, entry) in self.recorded[group.clone()].iter().rev() {
            suffix += if entry.added { 1 } else { -1 };
            self.degree_suffix.push((entry.version, suffix));
        }
        self.degree_suffix[ds_start..].reverse();

        // Override intervals per pair.  The group is in version order, so a
        // stable sort by neighbor keeps each pair's changes version-sorted.
        self.recorded[group.clone()].sort_by_key(|&(_, e)| e.neighbor);
        let ov_start = self.overrides.len();
        let mut i = group.start;
        while i < group.end {
            let neighbor = self.recorded[i].1.neighbor;
            let live_present = live.view_contains(vertex, neighbor);
            let mut lo = 0u32;
            while i < group.end && self.recorded[i].1.neighbor == neighbor {
                let entry = self.recorded[i].1;
                let state_before = !entry.added;
                if state_before != live_present {
                    self.overrides.push(OverrideInterval {
                        neighbor,
                        lo,
                        hi: entry.version,
                        present: state_before,
                    });
                }
                lo = entry.version + 1;
                i += 1;
            }
        }
        VertexRanges {
            ds_start: ds_start as u32,
            ds_end: self.degree_suffix.len() as u32,
            ov_start: ov_start as u32,
            ov_end: self.overrides.len() as u32,
        }
    }

    fn log(&self, v: VertexRef) -> Option<VertexLogRef<'_>> {
        debug_assert!(self.sealed, "delta log queried before seal()");
        let (word, mask) = filter_slot(v);
        if self.touched_filter[word] & mask == 0 {
            return None;
        }
        let r = self.index.get(&v)?;
        Some(VertexLogRef {
            degree_suffix: &self.degree_suffix[r.ds_start as usize..r.ds_end as usize],
            overrides: &self.overrides[r.ov_start as usize..r.ov_end as usize],
        })
    }
}

impl VertexLogRef<'_> {
    /// Historic presence of `neighbor` at version `t`, if it differs from the
    /// live sample (`None` means the live sample is authoritative).
    #[inline]
    fn historic_override(&self, neighbor: u32, t: u32) -> Option<bool> {
        let start = self.overrides.partition_point(|o| o.neighbor < neighbor);
        self.overrides[start..]
            .iter()
            .take_while(|o| o.neighbor == neighbor)
            .find(|o| o.lo <= t && t <= o.hi)
            .map(|o| o.present)
    }

    /// Appends the overrides *active at version `t`* to `out` (which the
    /// caller cleared or positioned), sorted by neighbor id.
    ///
    /// `out` gains one `(neighbor, present)` entry per pair whose state at
    /// version `t` differs from the live sample; probing it is a binary
    /// search over a few cache lines instead of a walk over the full interval
    /// log, which is what keeps hub-heavy intersections close to live-sample
    /// speed.
    fn push_active_at(&self, t: u32, out: &mut Vec<(u32, bool)>) {
        for interval in self.overrides {
            if interval.lo <= t && t <= interval.hi {
                out.push((interval.neighbor, interval.present));
            }
        }
    }
}

/// A [`SampleStore`] wrapper that applies updates to the live sample while
/// recording every adjacency change into a [`VersionedDeltas`] log.
///
/// The state transitions (and the RNG consumption) are bit-identical to
/// driving the [`SampleGraph`] directly, which is what makes PARABACUS
/// produce exactly the same sample — and therefore the same estimates — as
/// sequential ABACUS (Theorem 5).
#[derive(Debug)]
pub struct RecordingSample<'a> {
    sample: &'a mut SampleGraph,
    deltas: &'a mut VersionedDeltas,
    version: u32,
}

impl<'a> RecordingSample<'a> {
    /// Wraps the live sample for the update of batch position `version`.
    pub fn new(sample: &'a mut SampleGraph, deltas: &'a mut VersionedDeltas, version: u32) -> Self {
        RecordingSample {
            sample,
            deltas,
            version,
        }
    }
}

impl SampleStore<Edge> for RecordingSample<'_> {
    fn store_len(&self) -> usize {
        self.sample.store_len()
    }

    fn store_contains(&self, item: &Edge) -> bool {
        self.sample.store_contains(item)
    }

    fn store_insert(&mut self, item: Edge) {
        self.deltas.record(self.version, true, item);
        self.sample.store_insert(item);
    }

    fn store_remove(&mut self, item: &Edge) -> bool {
        let removed = self.sample.store_remove(item);
        if removed {
            self.deltas.record(self.version, false, *item);
        }
        removed
    }

    fn store_replace_random<R: Rng + ?Sized>(&mut self, item: Edge, rng: &mut R) {
        // Mirrors SampleGraph::store_replace_random exactly: one RNG draw to
        // pick the victim, then remove + insert.
        let victim = self.sample.random_edge(rng);
        self.deltas.record(self.version, false, victim);
        self.sample.store_remove(&victim);
        self.deltas.record(self.version, true, item);
        self.sample.store_insert(item);
    }

    fn store_clear(&mut self) {
        // lint:allow(panic-policy): the reservoir policy has no clear operation; reaching this is a policy-contract break worth crashing on
        unreachable!("the sampling policy never clears the sample mid-batch");
    }
}

/// The per-element resolved-override cache inside a [`ViewScratch`]: for each
/// vertex resolved so far, the slice of the shared `arena` holding its
/// overrides active at the current element's version.
#[derive(Debug, Default)]
struct ResolvedCache {
    /// Bumped by [`ViewScratch::begin_element`]; a [`VersionView`] only reads
    /// cache entries written under its own epoch, so a stale view that
    /// outlives a newer sibling on the same scratch degrades to recomputing
    /// instead of reading another version's entries.
    epoch: u64,
    /// `(vertex, start, end)` ranges into `arena`, in resolution order (the
    /// handful of vertices one per-edge count touches — linear scan wins).
    keys: Vec<(VertexRef, u32, u32)>,
    arena: Vec<(u32, bool)>,
}

/// Reusable phase-2 scratch: the per-element resolved-override cache plus a
/// pool of override buffers for in-flight intersections.
///
/// One per-edge count resolves a few vertices' active overrides and probes
/// them from nested iteration (`count_via_anchor` intersects inside a
/// neighbor walk).  With a fresh view per element that cost one heap
/// allocation per resolved vertex and per intersection operand — the
/// dominant malloc traffic of phase 2.  A worker thread instead keeps one
/// `ViewScratch` alive across all elements it counts and hands it to each
/// view: buffers are cleared, never freed, so the steady state allocates
/// nothing.
///
/// Construction is allocation-free; all buffers grow on first use and are
/// retained afterwards.
#[derive(Debug, Default)]
pub struct ViewScratch {
    resolved: RefCell<ResolvedCache>,
    pool: RefCell<Vec<Vec<(u32, bool)>>>,
}

impl ViewScratch {
    /// Creates an empty scratch (no allocation until first use).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new element: invalidates the resolved cache (its contents are
    /// version-specific) and returns the new epoch.
    fn begin_element(&self) -> u64 {
        let mut cache = self.resolved.borrow_mut();
        cache.epoch += 1;
        cache.keys.clear();
        cache.arena.clear();
        cache.epoch
    }

    /// Takes a cleared override buffer from the pool (or a fresh one).
    fn acquire(&self) -> Vec<(u32, bool)> {
        self.pool.borrow_mut().pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool for the next intersection to reuse.
    fn release(&self, mut buffer: Vec<(u32, bool)>) {
        buffer.clear();
        self.pool.borrow_mut().push(buffer);
    }
}

/// The live (post-batch) state a [`VersionView`] reconstructs versions
/// against: the hash-backed sample itself, or — when the snapshot is
/// enabled — the frozen CSR mirror *plus* the sample.  Both structures
/// mirror the same sealed state and report identical adjacency and
/// probe-model comparisons, so the choice is invisible in every reported
/// number.
///
/// With the snapshot enabled the view routes each operation to whichever
/// structure serves it fastest: the untouched-vertex intersection fast path
/// runs the CSR's adaptive sorted kernels, while the slow path (vertices the
/// batch touched, where probes interleave with override lookups) probes the
/// sample's O(1) hash sets — a sorted CSR row would pay a binary search per
/// probe there.
#[derive(Debug, Clone, Copy)]
enum Backing<'a> {
    Hash(&'a SampleGraph),
    Csr(&'a CsrSnapshot, &'a SampleGraph),
}

/// A vertex's live neighborhood resolved once, for repeated membership
/// probes inside one intersection.
struct ResolvedRow<'a>(Option<&'a AdjacencySet>);

impl ResolvedRow<'_> {
    #[inline]
    fn contains(&self, x: u32) -> bool {
        self.0.is_some_and(|s| s.contains(x))
    }
}

impl<'a> Backing<'a> {
    #[inline]
    fn view_degree(&self, v: VertexRef) -> usize {
        match self {
            Backing::Hash(sample) => sample.view_degree(v),
            Backing::Csr(snapshot, _) => snapshot.view_degree(v),
        }
    }

    #[inline]
    fn view_contains(&self, v: VertexRef, neighbor: u32) -> bool {
        match self {
            Backing::Hash(sample) => sample.view_contains(v, neighbor),
            Backing::Csr(_, sample) => sample.view_contains(v, neighbor),
        }
    }

    #[inline]
    fn view_for_each_neighbor(&self, v: VertexRef, f: &mut dyn FnMut(u32)) {
        match self {
            Backing::Hash(sample) => sample.view_for_each_neighbor(v, f),
            Backing::Csr(snapshot, _) => snapshot.view_for_each_neighbor(v, f),
        }
    }

    #[inline]
    fn view_intersection_excluding(
        &self,
        a: VertexRef,
        b: VertexRef,
        exclude: u32,
    ) -> abacus_graph::intersect::IntersectionResult {
        match self {
            Backing::Hash(sample) => sample.view_intersection_excluding(a, b, exclude),
            Backing::Csr(snapshot, sample) => crate::snapshot::SnapshotView::new(snapshot, sample)
                .view_intersection_excluding(a, b, exclude),
        }
    }

    /// Resolves `v`'s live neighborhood for repeated point probes: always the
    /// hash set when a sample is available, since per-probe O(1) beats a
    /// binary search over a sorted row.
    #[inline]
    fn resolved_row(&self, v: VertexRef) -> ResolvedRow<'a> {
        match self {
            Backing::Hash(sample) | Backing::Csr(_, sample) => ResolvedRow(sample.neighbors(v)),
        }
    }
}

/// A [`VersionView`]'s scratch: borrowed from the worker's long-lived
/// [`ViewScratch`], or owned when the caller did not supply one (tests,
/// one-off views).
#[derive(Debug)]
enum ScratchHandle<'a> {
    Owned(Box<ViewScratch>),
    Shared(&'a ViewScratch),
}

impl ScratchHandle<'_> {
    #[inline]
    fn get(&self) -> &ViewScratch {
        match self {
            ScratchHandle::Owned(scratch) => scratch,
            ScratchHandle::Shared(scratch) => scratch,
        }
    }
}

/// A read-only view of the sample *as it was* at a given version of the
/// current mini-batch.
///
/// The backing [`VersionedDeltas`] must have been [sealed](VersionedDeltas::seal)
/// against the same live sample (and, when counting runs over the frozen
/// snapshot, the snapshot must mirror exactly that sealed state).
///
/// The view caches, per queried vertex, the overrides that are *active* at
/// its version (usually none or a handful), so repeated probes against the
/// same hub vertex — the common case inside the butterfly kernel — cost
/// little more than probing the live sample.  The cache lives in a
/// [`ViewScratch`]: pass a long-lived one to [`new_in`](Self::new_in) /
/// [`over_snapshot_in`](Self::over_snapshot_in) to reuse its buffers across
/// elements (the worker hot path), or use [`new`](Self::new) /
/// [`over_snapshot`](Self::over_snapshot) for a self-contained view.
#[derive(Debug)]
pub struct VersionView<'a> {
    backing: Backing<'a>,
    deltas: &'a VersionedDeltas,
    version: u32,
    scratch: ScratchHandle<'a>,
    /// The scratch epoch this view resolved under (see [`ResolvedCache`]).
    epoch: u64,
}

impl<'a> VersionView<'a> {
    /// Creates the view of version `version` (the state the `version`-th edge
    /// of the batch observes, i.e. before its own update).
    #[must_use]
    pub fn new(sample: &'a SampleGraph, deltas: &'a VersionedDeltas, version: u32) -> Self {
        Self::build(Backing::Hash(sample), deltas, version, None)
    }

    /// [`new`](Self::new), reusing the buffers of a caller-owned scratch.
    #[must_use]
    pub fn new_in(
        sample: &'a SampleGraph,
        deltas: &'a VersionedDeltas,
        version: u32,
        scratch: &'a ViewScratch,
    ) -> Self {
        Self::build(Backing::Hash(sample), deltas, version, Some(scratch))
    }

    /// Creates the view of version `version` over the frozen CSR snapshot of
    /// the sealed post-batch sample; `sample` must be that same sealed state
    /// (the view uses its hash sets for point probes on the slow path).
    #[must_use]
    pub fn over_snapshot(
        snapshot: &'a CsrSnapshot,
        sample: &'a SampleGraph,
        deltas: &'a VersionedDeltas,
        version: u32,
    ) -> Self {
        Self::build(Backing::Csr(snapshot, sample), deltas, version, None)
    }

    /// [`over_snapshot`](Self::over_snapshot), reusing the buffers of a
    /// caller-owned scratch.
    #[must_use]
    pub fn over_snapshot_in(
        snapshot: &'a CsrSnapshot,
        sample: &'a SampleGraph,
        deltas: &'a VersionedDeltas,
        version: u32,
        scratch: &'a ViewScratch,
    ) -> Self {
        Self::build(
            Backing::Csr(snapshot, sample),
            deltas,
            version,
            Some(scratch),
        )
    }

    fn build(
        backing: Backing<'a>,
        deltas: &'a VersionedDeltas,
        version: u32,
        scratch: Option<&'a ViewScratch>,
    ) -> Self {
        let (scratch, epoch) = match scratch {
            Some(shared) => {
                let epoch = shared.begin_element();
                (ScratchHandle::Shared(shared), epoch)
            }
            None => (ScratchHandle::Owned(Box::default()), 0),
        };
        VersionView {
            backing,
            deltas,
            version,
            scratch,
            epoch,
        }
    }

    /// Copies the overrides of `v` active at this view's version into `out`
    /// (cleared first), sorted by neighbor id; `out` stays empty when the
    /// batch did not touch `v` at all.
    fn active_overrides_into(&self, v: VertexRef, out: &mut Vec<(u32, bool)>) {
        out.clear();
        let Some(log) = self.deltas.log(v) else {
            return;
        };
        let mut cache = self.scratch.get().resolved.borrow_mut();
        if cache.epoch != self.epoch {
            // A newer view took over the shared scratch; serve this stale
            // view without touching its successor's cache.
            log.push_active_at(self.version, out);
            return;
        }
        let ResolvedCache { keys, arena, .. } = &mut *cache;
        if let Some(&(_, start, end)) = keys.iter().find(|&&(vertex, _, _)| vertex == v) {
            out.extend_from_slice(&arena[start as usize..end as usize]);
            return;
        }
        let start = arena.len();
        log.push_active_at(self.version, arena);
        let end = arena.len();
        keys.push((v, start as u32, end as u32));
        out.extend_from_slice(&arena[start..end]);
    }

    /// Calls `f` for every historic neighbor of `v` given `v`'s active
    /// overrides.
    fn for_each_historic_neighbor(
        &self,
        v: VertexRef,
        active: &[(u32, bool)],
        f: &mut impl FnMut(u32),
    ) {
        if active.is_empty() {
            self.backing.view_for_each_neighbor(v, f);
            return;
        }
        // Live neighbors, skipping those that were absent at this version
        // (overrides kept for live neighbors are always `present == false`).
        self.backing.view_for_each_neighbor(v, &mut |n| {
            if lookup(active, n).is_none() {
                f(n);
            }
        });
        // Pairs that were present at this version but are absent from the
        // live sample (pruning guarantees these never overlap the loop above).
        for &(neighbor, present) in active {
            if present {
                f(neighbor);
            }
        }
    }
}

/// Binary search over an active-override list.
#[inline]
fn lookup(active: &[(u32, bool)], neighbor: u32) -> Option<bool> {
    if active.is_empty() {
        return None;
    }
    active
        .binary_search_by_key(&neighbor, |&(n, _)| n)
        .ok()
        .map(|i| active[i].1)
}

impl NeighborhoodView for VersionView<'_> {
    fn view_degree(&self, v: VertexRef) -> usize {
        let live = self.backing.view_degree(v) as i64;
        let Some(log) = self.deltas.log(v) else {
            return live as usize;
        };
        // The live degree minus the net change applied at this version or
        // later (one binary search into the version-ordered suffix sums).
        let idx = log
            .degree_suffix
            .partition_point(|&(version, _)| version < self.version);
        let future = log.degree_suffix.get(idx).map_or(0, |&(_, suffix)| suffix);
        // lint:allow(panic-policy): a negative versioned degree means the delta log disagrees with the sample — corrupted pipeline state, not an input condition
        usize::try_from(live - i64::from(future)).expect("versioned degree cannot be negative")
    }

    fn view_contains(&self, v: VertexRef, neighbor: u32) -> bool {
        if let Some(log) = self.deltas.log(v) {
            if let Some(present) = log.historic_override(neighbor, self.version) {
                return present;
            }
        }
        self.backing.view_contains(v, neighbor)
    }

    fn view_for_each_neighbor(&self, v: VertexRef, f: &mut dyn FnMut(u32)) {
        let scratch = self.scratch.get();
        let mut active = scratch.acquire();
        self.active_overrides_into(v, &mut active);
        self.for_each_historic_neighbor(v, &active, &mut |n| f(n));
        scratch.release(active);
    }

    fn view_intersection_excluding(
        &self,
        a: VertexRef,
        b: VertexRef,
        exclude: u32,
    ) -> abacus_graph::intersect::IntersectionResult {
        if self.deltas.log(a).is_none() && self.deltas.log(b).is_none() {
            // Neither endpoint was touched by the batch: the live backing is
            // the historic truth and its specialised kernel applies.
            return self.backing.view_intersection_excluding(a, b, exclude);
        }

        // Iterate the smaller historic neighborhood, probe the other one with
        // both its active overrides and its live neighborhood resolved once.
        let (iterate, probe) = if self.view_degree(a) <= self.view_degree(b) {
            (a, b)
        } else {
            (b, a)
        };
        let scratch = self.scratch.get();
        let mut probe_active = scratch.acquire();
        let mut iterate_active = scratch.acquire();
        self.active_overrides_into(probe, &mut probe_active);
        self.active_overrides_into(iterate, &mut iterate_active);
        if probe_active.is_empty() && iterate_active.is_empty() {
            // Touched endpoints, but no override is *active* at this version:
            // both historic neighborhoods equal the live ones, so the
            // backing's specialised kernel applies.  It picks the iterated
            // side by the same smaller-degree rule (ties: first argument) and
            // reports the probe-model comparisons `|smaller \ {exclude}|`, so
            // count and comparisons are bit-identical to the manual loop.
            scratch.release(iterate_active);
            scratch.release(probe_active);
            return self.backing.view_intersection_excluding(a, b, exclude);
        }
        let probe_live = self.backing.resolved_row(probe);
        let mut result = abacus_graph::intersect::IntersectionResult::default();
        self.for_each_historic_neighbor(iterate, &iterate_active, &mut |x| {
            if x == exclude {
                return;
            }
            result.comparisons += 1;
            let present = match lookup(&probe_active, x) {
                Some(present) => present,
                None => probe_live.contains(x),
            };
            if present {
                result.count += 1;
            }
        });
        scratch.release(iterate_active);
        scratch.release(probe_active);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Side;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn edge(l: u32, r: u32) -> Edge {
        Edge::new(l, r)
    }

    /// Collects the neighbor set a view reports for a vertex.
    fn view_neighbors(view: &VersionView<'_>, v: VertexRef) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        view.view_for_each_neighbor(v, &mut |n| {
            assert!(out.insert(n), "duplicate neighbor {n} reported for {v}");
        });
        out
    }

    #[test]
    fn version_zero_sees_the_pre_batch_sample() {
        let mut sample = SampleGraph::new();
        sample.store_insert(edge(1, 10));
        sample.store_insert(edge(2, 10));

        let mut deltas = VersionedDeltas::new();
        // Batch: position 0 inserts (3,10); position 1 removes (1,10).
        {
            let mut rec = RecordingSample::new(&mut sample, &mut deltas, 0);
            rec.store_insert(edge(3, 10));
        }
        {
            let mut rec = RecordingSample::new(&mut sample, &mut deltas, 1);
            assert!(rec.store_remove(&edge(1, 10)));
        }
        deltas.seal(&sample);
        assert!(deltas.is_sealed());

        let v0 = VersionView::new(&sample, &deltas, 0);
        assert_eq!(
            view_neighbors(&v0, VertexRef::right(10)),
            BTreeSet::from([1, 2])
        );
        assert!(v0.view_contains(VertexRef::right(10), 1));
        assert!(!v0.view_contains(VertexRef::right(10), 3));
        assert_eq!(v0.view_degree(VertexRef::right(10)), 2);

        let v1 = VersionView::new(&sample, &deltas, 1);
        assert_eq!(
            view_neighbors(&v1, VertexRef::right(10)),
            BTreeSet::from([1, 2, 3])
        );

        let v2 = VersionView::new(&sample, &deltas, 2);
        assert_eq!(
            view_neighbors(&v2, VertexRef::right(10)),
            BTreeSet::from([2, 3])
        );
        assert_eq!(deltas.recorded_ops(), 2);
    }

    #[test]
    fn reinsertion_within_a_batch_is_reconstructed() {
        let mut sample = SampleGraph::new();
        sample.store_insert(edge(1, 10));
        let mut deltas = VersionedDeltas::new();
        // Position 0 removes (1,10); position 1 re-inserts it.
        {
            let mut rec = RecordingSample::new(&mut sample, &mut deltas, 0);
            rec.store_remove(&edge(1, 10));
        }
        {
            let mut rec = RecordingSample::new(&mut sample, &mut deltas, 1);
            rec.store_insert(edge(1, 10));
        }
        deltas.seal(&sample);
        let v0 = VersionView::new(&sample, &deltas, 0);
        assert!(v0.view_contains(VertexRef::left(1), 10));
        let v1 = VersionView::new(&sample, &deltas, 1);
        assert!(!v1.view_contains(VertexRef::left(1), 10));
        let v2 = VersionView::new(&sample, &deltas, 2);
        assert!(v2.view_contains(VertexRef::left(1), 10));
    }

    #[test]
    fn replay_reproduces_the_live_sample_structurally() {
        let mut sample = SampleGraph::new();
        for i in 0..6u32 {
            sample.store_insert(edge(i, i + 10));
        }
        let before = sample.clone();

        let mut deltas = VersionedDeltas::new();
        let mut rng = StdRng::seed_from_u64(99);
        for (version, &(op, l, r)) in [(0u8, 7u32, 20u32), (1, 0, 10), (2, 8, 21), (0, 9, 22)]
            .iter()
            .enumerate()
        {
            let mut rec = RecordingSample::new(&mut sample, &mut deltas, version as u32);
            match op {
                0 => rec.store_insert(edge(l, r)),
                1 => {
                    rec.store_remove(&edge(l, r));
                }
                _ => rec.store_replace_random(edge(l, r), &mut rng),
            }
        }

        let mut replica = before;
        deltas.replay_onto(&mut replica);
        // Structural equality matters: the dense edge vector must have the
        // same slot order so later random-victim draws pick the same edges.
        assert_eq!(replica.edges(), sample.edges());
        assert_eq!(replica.len(), sample.len());
    }

    #[test]
    fn clear_resets_the_log_and_unseals_it() {
        let mut deltas = VersionedDeltas::new();
        deltas.record(0, true, edge(1, 2));
        assert_eq!(deltas.recorded_ops(), 1);
        deltas.seal(&SampleGraph::new());
        deltas.clear();
        assert_eq!(deltas.recorded_ops(), 0);
        assert!(!deltas.is_sealed());
        // Recording after clear() is allowed again.
        deltas.record(0, true, edge(3, 4));
        assert_eq!(deltas.recorded_ops(), 1);
    }

    #[test]
    fn clear_retains_the_arena_capacity() {
        let mut sample = SampleGraph::new();
        let mut deltas = VersionedDeltas::new();
        for version in 0..64u32 {
            let mut rec = RecordingSample::new(&mut sample, &mut deltas, version);
            rec.store_insert(edge(version, 10 + version % 5));
        }
        deltas.seal(&sample);
        let caps = (
            deltas.recorded.capacity(),
            deltas.ops.capacity(),
            deltas.degree_suffix.capacity(),
            deltas.overrides.capacity(),
        );
        assert!(caps.0 > 0 && caps.2 > 0);
        deltas.clear();
        assert_eq!(
            (
                deltas.recorded.capacity(),
                deltas.ops.capacity(),
                deltas.degree_suffix.capacity(),
                deltas.overrides.capacity(),
            ),
            caps,
            "clear() must keep the arenas for the next batch"
        );
        assert!(deltas.recorded.is_empty() && deltas.index.is_empty());
    }

    #[test]
    #[should_panic(expected = "sealed delta log")]
    fn recording_into_a_sealed_log_panics() {
        let mut deltas = VersionedDeltas::new();
        deltas.seal(&SampleGraph::new());
        deltas.record(0, true, edge(1, 2));
    }

    #[test]
    fn hub_vertex_with_many_changes_is_reconstructed() {
        // A single right-side hub accumulates many insertions and deletions
        // across the batch; every intermediate version must be recoverable.
        let mut sample = SampleGraph::new();
        let mut deltas = VersionedDeltas::new();
        let mut expected: Vec<BTreeSet<u32>> = Vec::new();
        let mut live: BTreeSet<u32> = BTreeSet::new();
        for version in 0..200u32 {
            expected.push(live.clone());
            let l = version % 37;
            let e = edge(l, 10);
            let mut rec = RecordingSample::new(&mut sample, &mut deltas, version);
            if live.contains(&l) {
                assert!(rec.store_remove(&e));
                live.remove(&l);
            } else {
                rec.store_insert(e);
                live.insert(l);
            }
        }
        deltas.seal(&sample);
        for (version, want) in expected.iter().enumerate() {
            let view = VersionView::new(&sample, &deltas, version as u32);
            assert_eq!(&view_neighbors(&view, VertexRef::right(10)), want);
            assert_eq!(view.view_degree(VertexRef::right(10)), want.len());
        }
    }

    #[test]
    fn ops_iterator_reports_the_recorded_sequence() {
        let mut sample = SampleGraph::new();
        let mut deltas = VersionedDeltas::new();
        {
            let mut rec = RecordingSample::new(&mut sample, &mut deltas, 0);
            rec.store_insert(edge(1, 10));
        }
        {
            let mut rec = RecordingSample::new(&mut sample, &mut deltas, 1);
            assert!(rec.store_remove(&edge(1, 10)));
        }
        let ops: Vec<(Edge, bool)> = deltas.ops().collect();
        assert_eq!(ops, vec![(edge(1, 10), true), (edge(1, 10), false)]);
    }

    #[test]
    fn stale_view_on_a_shared_scratch_still_answers_correctly() {
        // Two views alive on one scratch: the newer one owns the resolved
        // cache (epoch), the older one must recompute rather than read the
        // newer version's cached overrides.
        let mut sample = SampleGraph::new();
        sample.store_insert(edge(1, 10));
        let mut deltas = VersionedDeltas::new();
        {
            let mut rec = RecordingSample::new(&mut sample, &mut deltas, 0);
            assert!(rec.store_remove(&edge(1, 10)));
        }
        deltas.seal(&sample);

        let scratch = ViewScratch::new();
        let v0 = VersionView::new_in(&sample, &deltas, 0, &scratch);
        assert!(v0.view_contains(VertexRef::left(1), 10));
        // Constructing v1 bumps the epoch and clears the cache.
        let v1 = VersionView::new_in(&sample, &deltas, 1, &scratch);
        assert!(!v1.view_contains(VertexRef::left(1), 10));
        assert_eq!(
            view_neighbors(&v1, VertexRef::left(1)),
            BTreeSet::new(),
            "v1 sees the post-removal state"
        );
        // The stale v0 must still see version 0, not v1's cached resolution.
        assert_eq!(
            view_neighbors(&v0, VertexRef::left(1)),
            BTreeSet::from([10]),
            "stale view must bypass the newer epoch's cache"
        );
        assert_eq!(v0.view_degree(VertexRef::left(1)), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// A `VersionView` over the frozen CSR snapshot of the sealed sample
        /// reports exactly what the hash-backed view reports — adjacency,
        /// degrees, membership, and intersections with identical probe-model
        /// comparisons — at every version of a random batch.  Both sides run
        /// through a long-lived shared [`ViewScratch`] exactly like the
        /// worker hot path, so the pooled buffers and the epoch handling are
        /// covered by the same parity bar.
        #[test]
        fn snapshot_backed_views_match_hash_backed_views(
            ops in proptest::collection::vec((0u8..3, 0u32..6, 0u32..6), 1..40),
            seed in any::<u64>(),
        ) {
            use abacus_graph::csr::CsrSnapshot;
            use abacus_graph::intersect::KernelTuning;

            let mut sample = SampleGraph::new();
            for i in 0..4u32 {
                sample.store_insert(edge(i, i + 10));
            }
            let mut deltas = VersionedDeltas::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut versions = 0u32;
            for (version, (op, l, r)) in (0u32..).zip(ops) {
                versions = version + 1;
                let e = edge(l, r + 10);
                let mut rec = RecordingSample::new(&mut sample, &mut deltas, version);
                match op {
                    0 => {
                        if !rec.store_contains(&e) {
                            rec.store_insert(e);
                        }
                    }
                    1 => {
                        let _ = rec.store_remove(&e);
                    }
                    _ => {
                        if rec.store_len() > 0 && !rec.store_contains(&e) {
                            rec.store_replace_random(e, &mut rng);
                        }
                    }
                }
            }
            deltas.seal(&sample);
            let snapshot = CsrSnapshot::from_edges(
                sample.edges().iter().copied(),
                KernelTuning::default(),
            );

            let hash_scratch = ViewScratch::new();
            let snap_scratch = ViewScratch::new();
            for v in 0..=versions {
                let hash_view = VersionView::new_in(&sample, &deltas, v, &hash_scratch);
                let snap_view =
                    VersionView::over_snapshot_in(&snapshot, &sample, &deltas, v, &snap_scratch);
                for id in 0..20u32 {
                    for side in [Side::Left, Side::Right] {
                        let vref = VertexRef::new(side, id);
                        prop_assert_eq!(
                            view_neighbors(&snap_view, vref),
                            view_neighbors(&hash_view, vref)
                        );
                        prop_assert_eq!(
                            snap_view.view_degree(vref),
                            hash_view.view_degree(vref)
                        );
                        for n in 0..20u32 {
                            prop_assert_eq!(
                                snap_view.view_contains(vref, n),
                                hash_view.view_contains(vref, n)
                            );
                        }
                        let other = VertexRef::new(side, (id + 1) % 20);
                        prop_assert_eq!(
                            snap_view.view_intersection_excluding(vref, other, id),
                            hash_view.view_intersection_excluding(vref, other, id)
                        );
                    }
                }
            }
        }

        /// Reference check: apply a random batch of sample mutations through
        /// the recording wrapper, snapshotting the sample before each one.
        /// Every `VersionView` must report exactly the snapshot's adjacency.
        #[test]
        fn views_match_full_snapshots(
            ops in proptest::collection::vec((0u8..3, 0u32..6, 0u32..6), 1..40),
            seed in any::<u64>(),
        ) {
            let mut sample = SampleGraph::new();
            // Pre-populate with a few edges so removals and replacements have
            // something to act on.
            for i in 0..4u32 {
                sample.store_insert(edge(i, i + 10));
            }
            let mut deltas = VersionedDeltas::new();
            let mut rng = StdRng::seed_from_u64(seed);
            let mut snapshots: Vec<SampleGraph> = Vec::new();

            for (version, (op, l, r)) in (0u32..).zip(ops) {
                snapshots.push(sample.clone());
                let e = edge(l, r + 10);
                let mut rec = RecordingSample::new(&mut sample, &mut deltas, version);
                match op {
                    0 => {
                        if !rec.store_contains(&e) {
                            rec.store_insert(e);
                        }
                    }
                    1 => {
                        let _ = rec.store_remove(&e);
                    }
                    _ => {
                        if rec.store_len() > 0 && !rec.store_contains(&e) {
                            rec.store_replace_random(e, &mut rng);
                        }
                    }
                }
            }
            deltas.seal(&sample);

            let scratch = ViewScratch::new();
            for (v, snapshot) in snapshots.iter().enumerate() {
                let view = VersionView::new_in(&sample, &deltas, v as u32, &scratch);
                // Compare adjacency of every vertex id that could appear.
                for id in 0..20u32 {
                    for side in [Side::Left, Side::Right] {
                        let vref = VertexRef::new(side, id);
                        let mut want = BTreeSet::new();
                        snapshot.view_for_each_neighbor(vref, &mut |n| { want.insert(n); });
                        let got = view_neighbors(&view, vref);
                        prop_assert_eq!(&got, &want, "vertex {} at version {}", vref, v);
                        prop_assert_eq!(view.view_degree(vref), want.len());
                        for n in 0..20u32 {
                            prop_assert_eq!(
                                view.view_contains(vref, n),
                                want.contains(&n),
                                "membership of {} in {} at version {}", n, vref, v
                            );
                        }
                    }
                }
            }
        }
    }
}
