//! Glue between the bounded sample and the frozen CSR counting snapshot.
//!
//! The estimators keep the [`CsrSnapshot`] in lock-step with the hash-backed
//! [`SampleGraph`]:
//!
//! * **ABACUS** (per element) routes every Random Pairing update through
//!   [`MirroredSample`], which applies each mutation to both structures in
//!   one pass, so the snapshot always equals the sample the next element
//!   counts against.
//! * **PARABACUS** (per batch) replays the sealed delta log of each
//!   mini-batch onto its shared snapshot
//!   (see `ParAbacus`), mirroring
//!   [`VersionedDeltas::replay_onto`](crate::parabacus::versioned::VersionedDeltas::replay_onto).
//!
//! Snapshot maintenance is incremental (row patches, see
//! [`abacus_graph::csr`]); the O(sample) compaction cost is only paid when
//! churn crosses the snapshot's threshold.

use crate::sample_graph::SampleGraph;
use abacus_graph::csr::CsrSnapshot;
use abacus_graph::intersect::{
    slice_probe_excluding, sorted_intersection_excluding, IntersectionResult,
};
use abacus_graph::{Edge, NeighborhoodView, VertexRef};
use abacus_sampling::SampleStore;
use rand::Rng;

/// The hybrid counting view ABACUS (and the PARABACUS fast path) intersects
/// against when the snapshot is enabled: CSR rows for iteration, degrees,
/// and merges, the sample's hash sets for skewed probes.
///
/// Per operand-size regime the cheapest kernel differs (measured in
/// `crates/bench/benches/intersect.rs`):
///
/// * comparable sizes — fused sorted merge over the two contiguous rows,
/// * heavy skew with a hash-backed hub — iterate the small *sorted row*
///   (contiguous, unlike walking a hash set) and probe the hub's hash set at
///   O(1) expected per probe,
/// * heavy skew against a vector-backed set — galloping search over the
///   rows.
///
/// Every path reports probe-model `comparisons`, so estimates and Fig. 10
/// workload counters are bit-identical to the pure hash path.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotView<'a> {
    snapshot: &'a CsrSnapshot,
    sample: &'a SampleGraph,
}

impl<'a> SnapshotView<'a> {
    /// Pairs a snapshot with the sample it mirrors.  The two must be in
    /// lock-step (the estimators guarantee this via [`MirroredSample`] /
    /// batch replay).
    #[must_use]
    pub fn new(snapshot: &'a CsrSnapshot, sample: &'a SampleGraph) -> Self {
        SnapshotView { snapshot, sample }
    }
}

impl NeighborhoodView for SnapshotView<'_> {
    #[inline]
    fn view_degree(&self, v: VertexRef) -> usize {
        self.snapshot.view_degree(v)
    }

    #[inline]
    fn view_contains(&self, v: VertexRef, neighbor: u32) -> bool {
        self.sample.view_contains(v, neighbor)
    }

    #[inline]
    fn view_for_each_neighbor(&self, v: VertexRef, f: &mut dyn FnMut(u32)) {
        self.snapshot.view_for_each_neighbor(v, f);
    }

    #[inline]
    fn view_intersection_excluding(
        &self,
        a: VertexRef,
        b: VertexRef,
        exclude: u32,
    ) -> IntersectionResult {
        let (ra, rb) = (self.snapshot.row(a), self.snapshot.row(b));
        let (small_row, large_row, large_vertex) = if ra.len() <= rb.len() {
            (ra, rb, b)
        } else {
            (rb, ra, a)
        };
        if small_row.is_empty() {
            return IntersectionResult::default();
        }
        let tuning = self.snapshot.tuning();
        if large_row.len() > small_row.len().saturating_mul(tuning.merge_size_ratio) {
            // Skewed: probe the hub's hash set if it has one.
            if let Some(set) = self
                .sample
                .neighbors(large_vertex)
                .filter(|set| set.as_large().is_some())
            {
                return slice_probe_excluding(small_row, set, exclude);
            }
        }
        sorted_intersection_excluding(small_row, large_row, exclude, tuning)
    }
}

/// A [`SampleStore`] that applies every mutation to the live sample *and*
/// to its CSR snapshot, keeping the two in lock-step.
///
/// State transitions and RNG consumption are bit-identical to driving the
/// [`SampleGraph`] directly (the victim of a random replacement is drawn
/// from the sample exactly as [`SampleGraph::store_replace_random`] does),
/// so enabling the snapshot can never change sampling decisions.
#[derive(Debug)]
pub struct MirroredSample<'a> {
    sample: &'a mut SampleGraph,
    snapshot: &'a mut CsrSnapshot,
}

impl<'a> MirroredSample<'a> {
    /// Pairs a sample with the snapshot mirroring it.
    pub fn new(sample: &'a mut SampleGraph, snapshot: &'a mut CsrSnapshot) -> Self {
        MirroredSample { sample, snapshot }
    }
}

impl SampleStore<Edge> for MirroredSample<'_> {
    fn store_len(&self) -> usize {
        self.sample.store_len()
    }

    fn store_contains(&self, item: &Edge) -> bool {
        self.sample.store_contains(item)
    }

    fn store_insert(&mut self, item: Edge) {
        self.sample.store_insert(item);
        self.snapshot.apply(item, true);
    }

    fn store_remove(&mut self, item: &Edge) -> bool {
        let removed = self.sample.store_remove(item);
        if removed {
            self.snapshot.apply(*item, false);
        }
        removed
    }

    fn store_replace_random<R: Rng + ?Sized>(&mut self, item: Edge, rng: &mut R) {
        // Mirrors SampleGraph::store_replace_random exactly: one RNG draw to
        // pick the victim, then remove + insert.
        let victim = self.sample.random_edge(rng);
        self.store_remove(&victim);
        self.store_insert(item);
    }

    fn store_clear(&mut self) {
        self.sample.store_clear();
        *self.snapshot = CsrSnapshot::new(self.snapshot.tuning());
    }
}

/// Converts auxiliary `u32` entry counts (sorted-copy caches, snapshot
/// arenas) into edge equivalents for `memory_edges` accounting: one resident
/// [`Edge`] is two `u32` endpoints.
#[must_use]
pub fn entries_to_edge_equivalents(entries: usize) -> usize {
    entries.div_ceil(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::intersect::KernelTuning;
    use abacus_graph::{NeighborhoodView, VertexRef};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn edge(l: u32, r: u32) -> Edge {
        Edge::new(l, r)
    }

    /// Asserts the snapshot reports exactly the sample's adjacency for every
    /// vertex id in a small universe.
    fn assert_mirrors(sample: &SampleGraph, snapshot: &CsrSnapshot, universe: u32) {
        assert_eq!(snapshot.num_edges(), sample.len());
        for id in 0..universe {
            for v in [VertexRef::left(id), VertexRef::right(id)] {
                assert_eq!(snapshot.view_degree(v), sample.view_degree(v), "{v}");
                let mut want: Vec<u32> = Vec::new();
                sample.view_for_each_neighbor(v, &mut |n| want.push(n));
                want.sort_unstable();
                assert_eq!(snapshot.row(v), &want[..], "{v}");
            }
        }
    }

    #[test]
    fn mirrored_mutations_keep_sample_and_snapshot_identical() {
        let mut sample = SampleGraph::with_budget(16);
        let mut snapshot = CsrSnapshot::new(KernelTuning::default());
        let mut rng = StdRng::seed_from_u64(3);
        {
            let mut mirrored = MirroredSample::new(&mut sample, &mut snapshot);
            for i in 0..8u32 {
                mirrored.store_insert(edge(i, i % 3));
            }
            assert!(mirrored.store_remove(&edge(2, 2)));
            assert!(!mirrored.store_remove(&edge(2, 2)));
            mirrored.store_replace_random(edge(100, 100), &mut rng);
            assert_eq!(mirrored.store_len(), 7); // 8 inserts − 1 removal

            assert!(mirrored.store_contains(&edge(100, 100)));
        }
        assert_mirrors(&sample, &snapshot, 101);
    }

    #[test]
    fn clear_resets_both_sides() {
        let mut sample = SampleGraph::new();
        let mut snapshot = CsrSnapshot::new(KernelTuning::default());
        let mut mirrored = MirroredSample::new(&mut sample, &mut snapshot);
        mirrored.store_insert(edge(1, 2));
        mirrored.store_clear();
        assert_eq!(mirrored.store_len(), 0);
        assert_eq!(snapshot.num_edges(), 0);
        assert!(snapshot.row(VertexRef::left(1)).is_empty());
    }

    #[test]
    fn edge_equivalent_conversion_rounds_up() {
        assert_eq!(entries_to_edge_equivalents(0), 0);
        assert_eq!(entries_to_edge_equivalents(1), 1);
        assert_eq!(entries_to_edge_equivalents(2), 1);
        assert_eq!(entries_to_edge_equivalents(9), 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Random mixed mutation streams through the mirrored store leave the
        /// snapshot structurally identical to the sample.
        #[test]
        fn random_streams_stay_mirrored(
            ops in proptest::collection::vec((0u8..3, 0u32..10, 0u32..10), 1..200),
            seed in any::<u64>(),
        ) {
            let mut sample = SampleGraph::new();
            let mut snapshot = CsrSnapshot::new(KernelTuning::default());
            let mut rng = StdRng::seed_from_u64(seed);
            let mut mirrored = MirroredSample::new(&mut sample, &mut snapshot);
            for (op, l, r) in ops {
                let e = edge(l, r);
                match op {
                    0 => {
                        if !mirrored.store_contains(&e) {
                            mirrored.store_insert(e);
                        }
                    }
                    1 => {
                        let _ = mirrored.store_remove(&e);
                    }
                    _ => {
                        if mirrored.store_len() > 0 && !mirrored.store_contains(&e) {
                            mirrored.store_replace_random(e, &mut rng);
                        }
                    }
                }
            }
            assert_mirrors(&sample, &snapshot, 10);
        }
    }
}
