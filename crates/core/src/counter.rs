//! The common interface of every streaming butterfly counter in the workspace.

use abacus_stream::StreamElement;

/// A streaming butterfly-count estimator.
///
/// Implemented by ABACUS, PARABACUS, the exact oracle, and the insert-only
/// baselines (FLEET, CAS), so that the experiment harness can drive all of
/// them through one code path.
pub trait ButterflyCounter {
    /// Processes one stream element (edge insertion or deletion).
    fn process(&mut self, element: StreamElement);

    /// Processes a slice of stream elements in order.
    ///
    /// Batched implementations (PARABACUS) override this to flush any
    /// partially filled mini-batch at the end, so that the estimate reflects
    /// the entire input.
    fn process_stream(&mut self, stream: &[StreamElement]) {
        for element in stream {
            self.process(*element);
        }
    }

    /// The current butterfly-count estimate.
    ///
    /// Buffered implementations (PARABACUS) may lag behind the elements
    /// handed to [`process`](Self::process): the estimate reflects only
    /// completed mini-batches.  Use [`finish`](Self::finish) for a final
    /// estimate covering everything.
    fn estimate(&self) -> f64;

    /// Flushes any internal buffering and returns the final estimate.
    ///
    /// For eager estimators (ABACUS, the exact oracle, the insert-only
    /// baselines) this is simply [`estimate`](Self::estimate) — every element
    /// is fully accounted for as soon as `process` returns, so the default
    /// implementation suffices.  PARABACUS overrides it to process the
    /// partially filled mini-batch buffer and drain its pipeline first, so
    /// the returned value — and the statistics accessors afterwards — match
    /// what sequential ABACUS would report over the same stream.
    fn finish(&mut self) -> f64 {
        self.estimate()
    }

    /// Resident memory of the estimator in edge equivalents (one edge = two
    /// `u32` endpoints): the sample size for approximate estimators, the full
    /// graph for the exact oracle, **plus** any counting-side duplicates of
    /// that state — ABACUS/PARABACUS charge their memoised sorted hub copies
    /// and frozen CSR snapshot arenas here, so the Table 2 memory numbers
    /// reflect what is actually allocated.
    fn memory_edges(&self) -> usize;

    /// A short human-readable name used in experiment tables.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use abacus_graph::Edge;

    /// A trivial counter used to exercise the default `process_stream`.
    struct CountingStub {
        processed: usize,
    }

    impl ButterflyCounter for CountingStub {
        fn process(&mut self, _element: StreamElement) {
            self.processed += 1;
        }
        fn estimate(&self) -> f64 {
            self.processed as f64
        }
        fn memory_edges(&self) -> usize {
            0
        }
        fn name(&self) -> &'static str {
            "stub"
        }
    }

    #[test]
    fn default_process_stream_visits_every_element() {
        let mut stub = CountingStub { processed: 0 };
        let stream: Vec<StreamElement> = (0..10u32)
            .map(|i| StreamElement::insert(Edge::new(i, i)))
            .collect();
        stub.process_stream(&stream);
        assert_eq!(stub.estimate(), 10.0);
        assert_eq!(stub.name(), "stub");
        assert_eq!(stub.memory_edges(), 0);
        // The default `finish` is the current estimate for eager counters.
        assert_eq!(stub.finish(), 10.0);
    }
}
