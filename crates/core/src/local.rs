//! Per-vertex (local) butterfly count estimation.
//!
//! The paper's estimator maintains the *global* butterfly count; many of its
//! motivating applications (anomalous account detection, dense-community
//! seeds, collaborative filtering) additionally need to know **which
//! vertices** the butterflies concentrate on.  Following the local-counting
//! extensions of the triangle literature the paper builds on (TRIÈST-FD,
//! ThinkD), [`LocalAbacus`] attributes every discovered butterfly
//! `{u, v, w, x}` to its four corner vertices with the same reciprocal
//! increment used for the global estimate, which keeps every per-vertex
//! estimate unbiased by exactly the Theorem 1 argument (linearity of
//! expectation applies per vertex).
//!
//! The trade-off is that the per-edge kernel must *enumerate* the fourth
//! vertex of every butterfly instead of merely counting intersections, and the
//! per-vertex map costs O(#active vertices) extra memory — which is why the
//! plain global estimator remains the default.

use crate::config::AbacusConfig;
use crate::counter::ButterflyCounter;
use crate::probability::increment;
use crate::sample_graph::SampleGraph;
use crate::stats::ProcessingStats;
use abacus_graph::persist::{Decoder, Encoder, PersistError};
use abacus_graph::{FxHashMap, NeighborhoodView, Side, VertexRef};
use abacus_sampling::{RandomPairing, RandomPairingState};
use abacus_stream::{EdgeDelta, StreamElement};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// ABACUS with per-vertex butterfly estimates.
#[derive(Debug)]
pub struct LocalAbacus {
    config: AbacusConfig,
    sample: SampleGraph,
    policy: RandomPairing,
    rng: StdRng,
    global_estimate: f64,
    local_estimates: FxHashMap<VertexRef, f64>,
    stats: ProcessingStats,
}

impl LocalAbacus {
    /// Creates an estimator from a configuration.
    #[must_use]
    pub fn new(config: AbacusConfig) -> Self {
        LocalAbacus {
            config,
            sample: SampleGraph::with_budget(config.budget),
            policy: RandomPairing::new(config.budget),
            rng: StdRng::seed_from_u64(config.seed),
            global_estimate: 0.0,
            local_estimates: FxHashMap::default(),
            stats: ProcessingStats::default(),
        }
    }

    /// The per-vertex butterfly estimate of a vertex (0 when never touched).
    #[must_use]
    pub fn local_estimate(&self, v: VertexRef) -> f64 {
        self.local_estimates.get(&v).copied().unwrap_or(0.0)
    }

    /// All per-vertex estimates (vertices that never participated in a
    /// discovered butterfly are absent).
    #[must_use]
    pub fn local_estimates(&self) -> &FxHashMap<VertexRef, f64> {
        &self.local_estimates
    }

    /// The `top_k` vertices by estimated butterfly participation.
    #[must_use]
    pub fn top_vertices(&self, top_k: usize) -> Vec<(VertexRef, f64)> {
        let mut ranked: Vec<(VertexRef, f64)> =
            self.local_estimates.iter().map(|(&v, &c)| (v, c)).collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(top_k);
        ranked
    }

    /// The Random Pairing bookkeeping triplet.
    #[must_use]
    pub fn sampler_state(&self) -> RandomPairingState {
        self.policy.state()
    }

    /// Work counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ProcessingStats {
        self.stats
    }

    fn add_local(&mut self, vertex: VertexRef, delta: f64) {
        *self.local_estimates.entry(vertex).or_insert(0.0) += delta;
    }

    /// Enumerates the butterflies formed by `edge` with the sample, applying
    /// `per_butterfly` to the global and the four local estimates.
    fn count_and_attribute(&mut self, element: StreamElement, per_butterfly: f64) {
        let edge = element.edge;
        let u = edge.left_ref();
        let v = edge.right_ref();
        let mut discovered = 0u64;
        let mut comparisons = 0u64;

        // Iterate the cheaper endpoint's neighborhood, mirroring the kernel in
        // `abacus_graph::peredge` but keeping the identity of the fourth
        // vertex so it can be credited.
        let iterate_left =
            self.sample.view_neighbor_degree_sum(u) < self.sample.view_neighbor_degree_sum(v);
        let (anchor, other) = if iterate_left { (u, v) } else { (v, u) };
        let wedge_side = anchor.side.opposite();

        let mut updates: Vec<(VertexRef, VertexRef)> = Vec::new();
        let anchor_neighbors: Vec<u32> = self
            .sample
            .neighbors(anchor)
            .map(|n| n.iter().collect())
            .unwrap_or_default();
        for w_id in anchor_neighbors {
            if w_id == other.id {
                continue;
            }
            let w = VertexRef::new(wedge_side, w_id);
            let (Some(w_neighbors), Some(other_neighbors)) =
                (self.sample.neighbors(w), self.sample.neighbors(other))
            else {
                continue;
            };
            let (small, large) = if w_neighbors.len() <= other_neighbors.len() {
                (w_neighbors, other_neighbors)
            } else {
                (other_neighbors, w_neighbors)
            };
            for x_id in small {
                if x_id == anchor.id {
                    continue;
                }
                comparisons += 1;
                if large.contains(x_id) {
                    discovered += 1;
                    updates.push((w, VertexRef::new(anchor.side, x_id)));
                }
            }
        }

        if discovered > 0 {
            self.global_estimate += per_butterfly * discovered as f64;
            self.add_local(u, per_butterfly * discovered as f64);
            self.add_local(v, per_butterfly * discovered as f64);
            for (w, x) in updates {
                self.add_local(w, per_butterfly);
                self.add_local(x, per_butterfly);
            }
        }
        self.stats
            .record_element(element.delta.is_insert(), discovered, comparisons);
    }
}

impl ButterflyCounter for LocalAbacus {
    fn process(&mut self, element: StreamElement) {
        let per_butterfly = increment(
            self.config.budget,
            self.policy.state(),
            element.delta.is_insert(),
        );
        self.count_and_attribute(element, per_butterfly);
        match element.delta {
            EdgeDelta::Insert => self
                .policy
                .insert(element.edge, &mut self.sample, &mut self.rng),
            EdgeDelta::Delete => self.policy.delete(&element.edge, &mut self.sample),
        }
    }

    fn estimate(&self) -> f64 {
        self.global_estimate
    }

    fn memory_edges(&self) -> usize {
        self.sample.len()
    }

    fn name(&self) -> &'static str {
        "ABACUS-local"
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }

    fn save_state(&mut self) -> Result<Vec<u8>, PersistError> {
        let mut enc = Encoder::new();
        enc.put_usize(self.config.budget);
        enc.put_u64(self.config.seed);
        let state = self.policy.state();
        enc.put_usize(state.live_items);
        enc.put_usize(state.bad_deletions);
        enc.put_usize(state.good_deletions);
        for word in self.rng.state() {
            enc.put_u64(word);
        }
        self.sample.encode_state(&mut enc);
        enc.put_f64(self.global_estimate);
        // Hash order is history-dependent; a sorted dump makes the payload a
        // pure function of the estimates.
        let mut locals: Vec<(VertexRef, f64)> =
            self.local_estimates.iter().map(|(&v, &c)| (v, c)).collect();
        locals.sort_by_key(|&(v, _)| v);
        enc.put_usize(locals.len());
        for (vertex, estimate) in locals {
            enc.put_u8(match vertex.side {
                Side::Left => 0,
                Side::Right => 1,
            });
            enc.put_u32(vertex.id);
            enc.put_f64(estimate);
        }
        crate::persist::encode_stats(&mut enc, &self.stats);
        Ok(enc.finish())
    }

    fn restore_state(&mut self, state: &[u8]) -> Result<(), PersistError> {
        let mut dec = Decoder::new(state);
        let budget = dec.get_usize()?;
        let seed = dec.get_u64()?;
        if budget != self.config.budget || seed != self.config.seed {
            return Err(PersistError::Corrupt(
                "ABACUS-local snapshot was written under a different configuration".into(),
            ));
        }
        let triplet = RandomPairingState {
            live_items: dec.get_usize()?,
            bad_deletions: dec.get_usize()?,
            good_deletions: dec.get_usize()?,
        };
        self.policy = RandomPairing::from_state(self.config.budget, triplet);
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = dec.get_u64()?;
        }
        self.rng = StdRng::from_state(rng_state);
        self.sample.restore_state(&mut dec)?;
        self.global_estimate = dec.get_f64()?;
        let count = dec.get_usize()?;
        // Each entry is at least 13 bytes (side + id + estimate).
        if count > dec.remaining() / 13 {
            return Err(PersistError::Truncated(format!(
                "local-estimate table claims {count} entries, payload holds at most {}",
                dec.remaining() / 13
            )));
        }
        let mut locals = FxHashMap::default();
        for _ in 0..count {
            let side = match dec.get_u8()? {
                0 => Side::Left,
                1 => Side::Right,
                other => {
                    return Err(PersistError::Corrupt(format!(
                        "invalid vertex side byte {other}"
                    )))
                }
            };
            let vertex = VertexRef::new(side, dec.get_u32()?);
            let estimate = dec.get_f64()?;
            if locals.insert(vertex, estimate).is_some() {
                return Err(PersistError::Corrupt(
                    "duplicate vertex in local-estimate table".into(),
                ));
            }
        }
        self.local_estimates = locals;
        self.stats = crate::persist::decode_stats(&mut dec)?;
        dec.expect_end()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abacus::Abacus;
    use abacus_graph::exact::count_butterflies_per_side_vertex;
    use abacus_graph::{Edge, Side};
    use abacus_stream::generators::random::uniform_bipartite;
    use abacus_stream::{final_graph, inject_deletions_fast, DeletionConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dynamic_stream(seed: u64, edges: usize, alpha: f64) -> Vec<StreamElement> {
        let base = uniform_bipartite(50, 50, edges, &mut StdRng::seed_from_u64(seed));
        inject_deletions_fast(
            &base,
            DeletionConfig::new(alpha),
            &mut StdRng::seed_from_u64(seed + 1),
        )
    }

    #[test]
    fn global_estimate_matches_plain_abacus() {
        let stream = dynamic_stream(1, 1_200, 0.2);
        for budget in [64usize, 256, 5_000] {
            let mut plain = Abacus::new(AbacusConfig::new(budget).with_seed(7));
            plain.process_stream(&stream);
            let mut local = LocalAbacus::new(AbacusConfig::new(budget).with_seed(7));
            local.process_stream(&stream);
            let scale = plain.estimate().abs().max(1.0);
            assert!(
                (plain.estimate() - local.estimate()).abs() < 1e-9 * scale,
                "budget {budget}: {} vs {}",
                plain.estimate(),
                local.estimate()
            );
            // Sampled state is identical; `memory_edges` differs by the
            // counting-side auxiliaries (CSR snapshot, sorted caches) that
            // the plain estimator charges and LocalAbacus does not use.
            assert_eq!(plain.sample().len(), local.memory_edges());
        }
    }

    #[test]
    fn local_estimates_are_exact_with_a_covering_budget() {
        let stream = dynamic_stream(3, 900, 0.25);
        let mut local = LocalAbacus::new(AbacusConfig::new(10_000).with_seed(0));
        local.process_stream(&stream);

        let graph = final_graph(&stream);
        let exact_left = count_butterflies_per_side_vertex(&graph, Side::Left);
        let exact_right = count_butterflies_per_side_vertex(&graph, Side::Right);
        for (&vertex, &exact) in &exact_left {
            let estimate = local.local_estimate(VertexRef::left(vertex));
            assert!(
                (estimate - exact as f64).abs() < 1e-6,
                "L{vertex}: {estimate} vs {exact}"
            );
        }
        for (&vertex, &exact) in &exact_right {
            let estimate = local.local_estimate(VertexRef::right(vertex));
            assert!(
                (estimate - exact as f64).abs() < 1e-6,
                "R{vertex}: {estimate} vs {exact}"
            );
        }
        // Sum of local estimates is four times the global one (each butterfly
        // has four corners).
        let local_sum: f64 = local.local_estimates().values().sum();
        assert!((local_sum - 4.0 * local.estimate()).abs() < 1e-6);
        assert_eq!(local.name(), "ABACUS-local");
    }

    #[test]
    fn top_vertices_ranks_by_estimate() {
        let mut local = LocalAbacus::new(AbacusConfig::new(1_000).with_seed(2));
        // Butterfly-rich clique on one pair of right vertices.
        for l in 0..5u32 {
            local.process(StreamElement::insert(Edge::new(l, 100)));
            local.process(StreamElement::insert(Edge::new(l, 101)));
        }
        let top = local.top_vertices(2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, VertexRef::right(100));
        assert_eq!(top[1].0, VertexRef::right(101));
        assert!(top[0].1 >= top[1].1);
        assert!(local.top_vertices(0).is_empty());
        assert_eq!(local.local_estimate(VertexRef::left(99)), 0.0);
        assert!(local.stats().elements == 10);
        assert!(local.sampler_state().live_items == 10);
    }

    #[test]
    fn save_restore_mid_stream_is_bit_identical() {
        let stream = dynamic_stream(9, 1_000, 0.2);
        let cut = 613;
        let config = AbacusConfig::new(192).with_seed(4);

        let mut reference = LocalAbacus::new(config);
        reference.process_stream(&stream);

        let mut source = LocalAbacus::new(config);
        source.process_stream(&stream[..cut]);
        let payload = source.save_state().unwrap();
        let mut resumed = LocalAbacus::new(config);
        resumed.restore_state(&payload).unwrap();
        resumed.process_stream(&stream[cut..]);

        assert_eq!(reference.estimate().to_bits(), resumed.estimate().to_bits());
        assert_eq!(reference.sampler_state(), resumed.sampler_state());
        assert_eq!(reference.memory_edges(), resumed.memory_edges());
        assert_eq!(reference.stats().comparisons, resumed.stats().comparisons);
        assert_eq!(
            reference.local_estimates().len(),
            resumed.local_estimates().len()
        );
        for (&vertex, &estimate) in reference.local_estimates() {
            assert_eq!(
                estimate.to_bits(),
                resumed.local_estimate(vertex).to_bits(),
                "{vertex:?}"
            );
        }
        assert_eq!(
            reference.save_state().unwrap(),
            resumed.save_state().unwrap()
        );

        // Wrong configuration or truncation fails closed.
        let mut other = LocalAbacus::new(AbacusConfig::new(193).with_seed(4));
        assert!(other.restore_state(&payload).is_err());
        let mut target = LocalAbacus::new(config);
        assert!(target.restore_state(&payload[..payload.len() - 1]).is_err());
    }
}
