//! Offline drop-in replacement for the subset of the `rand` crate API this
//! workspace uses.
//!
//! The build environment has no network access, so instead of the crates.io
//! `rand` we ship a small, dependency-free implementation of exactly the
//! surface the ABACUS reproduction calls:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`] — a deterministic
//!   xoshiro256++ generator seeded through SplitMix64,
//! * [`Rng`] — the core generator trait (`next_u64`),
//! * [`RngExt`] — the convenience methods (`random_range`, `random_bool`,
//!   `random`) as a blanket extension trait,
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and uniform `choose`.
//!
//! Determinism matters more than statistical sophistication here: every
//! estimator seed in the paper reproduction flows through `seed_from_u64`, so
//! tests and experiments are reproducible across runs and platforms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A generator that can be instantiated from integer seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// The core random number generator trait: a source of uniform `u64`s.
pub trait Rng {
    /// Returns the next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the top 53 bits: the standard conversion used by rand itself.
        (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) as f64))
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// Samples a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        // `next_f64` is in [0, 1), so p == 1.0 must short-circuit.
        p >= 1.0 || self.next_f64() < p
    }

    /// Samples a value of a type with a canonical "standard" distribution
    /// (uniform over the domain for integers, `[0, 1)` for floats).
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types with a canonical standard distribution for [`RngExt::random`].
pub trait StandardUniform: Sized {
    /// Draws one standard-distributed value from `rng`.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / ((1u64 << 24) as f32))
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Multiplies a uniform `u64` into `[0, width)` without modulo bias worth
/// caring about (the bias is at most 2⁻⁶⁴ per bucket).
fn mul_shift(raw: u64, width: u128) -> u128 {
    (u128::from(raw) * width) >> 64
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end - self.start) as u128;
                self.start + mul_shift(rng.next_u64(), width) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let width = (end - start) as u128 + 1;
                start + mul_shift(rng.next_u64(), width) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + mul_shift(rng.next_u64(), width) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + mul_shift(rng.next_u64(), width) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        // `start + f * width` can round up to exactly `end` when the
        // magnitudes differ; clamp to preserve the half-open contract.
        (self.start + rng.next_f64() * (self.end - self.start)).min(self.end.next_down())
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        start + rng.next_f64() * (end - start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna), state-expanded from a 64-bit seed via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The generator's full internal state, for checkpoint/restore.
        ///
        /// Together with [`StdRng::from_state`] this round-trips the exact
        /// position in the random stream: a restored generator produces the
        /// same draws the saved one would have.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.state
        }

        /// Rebuilds a generator from state captured by [`StdRng::state`].
        #[must_use]
        pub fn from_state(state: [u64; 4]) -> Self {
            StdRng { state }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut s = seed;
            let state = [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ];
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngExt};

    /// Random operations on slices: in-place shuffling and uniform choice.
    pub trait SliceRandom {
        /// The element type of the slice.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.random_range(5..=5);
            assert_eq!(y, 5);
        }
    }

    #[test]
    fn random_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!(
                (9_000..11_000).contains(&c),
                "bucket count {c} far from 10k"
            );
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: usize = rng.random_range(4..4);
    }

    #[test]
    fn f64_range_upper_bound_is_exclusive_despite_rounding() {
        let mut rng = StdRng::seed_from_u64(8);
        let (start, end) = (1e16, 1e16 + 2.0);
        for _ in 0..10_000 {
            let x: f64 = rng.random_range(start..end);
            assert!(x >= start && x < end, "{x} escaped [{start}, {end})");
        }
    }

    #[test]
    fn random_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            assert!(rng.random_bool(1.0));
            assert!(!rng.random_bool(0.0));
        }
    }

    #[test]
    fn random_bool_matches_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "{hits} hits for p=0.25");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input unchanged"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(5);
        let v = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[(*v.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn next_f64_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
