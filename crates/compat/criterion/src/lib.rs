//! Offline drop-in replacement for the subset of `criterion` this workspace
//! uses.
//!
//! It implements the structural API (`criterion_group!` / `criterion_main!`,
//! [`Criterion::benchmark_group`], [`Bencher::iter`], [`BenchmarkId`]) with a
//! deliberately simple measurement loop: warm up briefly, then report the
//! mean wall-clock time per iteration over the configured measurement
//! window.  No statistics, plots, or baselines — but `cargo bench` produces
//! honest per-benchmark timings and `cargo bench --no-run` type-checks the
//! same code the real criterion would.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimization barrier.
pub use std::hint::black_box;

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(500),
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the target measurement window per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, duration: Duration) -> Self {
        self.measurement_time = duration;
        self
    }

    /// Sets the sample count; here it acts as a floor on the number of
    /// measured iterations.
    #[must_use]
    pub fn sample_size(mut self, size: usize) -> Self {
        self.sample_size = size;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.to_string(), self.measurement_time, self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    measurement_time: Duration,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the target measurement window for benchmarks in this group.
    pub fn measurement_time(&mut self, duration: Duration) -> &mut Self {
        self.measurement_time = duration;
        self
    }

    /// Sets the sample count; here it acts as a floor on the number of
    /// measured iterations.
    pub fn sample_size(&mut self, size: usize) -> &mut Self {
        self.sample_size = size;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.measurement_time,
            self.sample_size,
            f,
        );
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_benchmark(
            &format!("{}/{}", self.name, id),
            self.measurement_time,
            self.sample_size,
            |b| f(b, input),
        );
        self
    }

    /// Finishes the group (a no-op in this shim; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark identifier: a function name plus an optional parameter label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Creates an identifier for `name` at parameter value `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Creates an identifier carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.parameter {
            Some(p) if self.name.is_empty() => write!(f, "{p}"),
            Some(p) => write!(f, "{}/{}", self.name, p),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// The per-benchmark timing harness passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    measurement_time: Duration,
    /// Minimum number of measured iterations, from `sample_size`.
    min_iterations: u64,
    /// Mean time per iteration measured by the last `iter` call.
    mean: Option<Duration>,
    iterations: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly and records its mean wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until ~10% of the window is spent, at least once.
        let warmup_budget = self.measurement_time / 10;
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget {
                break;
            }
        }
        let per_iter = warmup_start.elapsed() / u32::try_from(warmup_iters).unwrap_or(u32::MAX);

        // Measurement: size the batch to fill the remaining window.
        let remaining = self.measurement_time.saturating_sub(warmup_start.elapsed());
        let iterations = if per_iter.is_zero() {
            1_000u64
        } else {
            (remaining.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000_000) as u64
        }
        .max(self.min_iterations);
        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean = Some(elapsed / u32::try_from(iterations).unwrap_or(u32::MAX));
        self.iterations = iterations;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    measurement_time: Duration,
    sample_size: usize,
    mut f: F,
) {
    let mut bencher = Bencher {
        measurement_time,
        min_iterations: sample_size as u64,
        mean: None,
        iterations: 0,
    };
    f(&mut bencher);
    match bencher.mean {
        Some(mean) => println!(
            "bench: {label:<50} {:>12.3} ns/iter ({} iterations)",
            mean.as_nanos() as f64,
            bencher.iterations
        ),
        None => println!("bench: {label:<50} (no measurement taken)"),
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
///
/// Supports both the simple form `criterion_group!(name, target, ...)` and
/// the configured form
/// `criterion_group!(name = n; config = expr; targets = t1, t2)`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        assert_eq!(BenchmarkId::new("size", 42).to_string(), "size/42");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("g");
        group
            .measurement_time(Duration::from_millis(10))
            .sample_size(5);
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
