//! Offline drop-in for the way this workspace uses `serde`: purely as
//! `#[derive(Serialize, Deserialize)]` annotations on plain data types.
//!
//! No code in the workspace serializes anything yet (there is no
//! `serde_json`-style backend in the offline environment), so the derives
//! expand to nothing.  The `serde(...)` helper attribute is accepted and
//! ignored so annotated types keep compiling if field attributes appear
//! later.  When the build environment gains network access this crate can be
//! deleted and the real `serde` dropped in without touching any call sites.

use proc_macro::TokenStream;

/// No-op stand-in for `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
