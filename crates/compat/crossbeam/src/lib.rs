//! Offline drop-in replacement for the subset of `crossbeam` this workspace
//! uses: an unbounded MPMC [`channel`].
//!
//! The PARABACUS worker pool clones one [`channel::Receiver`] per worker
//! (multi-consumer), which `std::sync::mpsc` does not offer; this shim
//! implements the multi-producer multi-consumer queue with a `Mutex` +
//! `Condvar`, which is entirely adequate for the coarse task granularity of
//! mini-batch chunks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Unbounded multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone; gives
    /// the unsent message back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders += 1;
            drop(state);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.senders -= 1;
            let last = state.senders == 0;
            drop(state);
            if last {
                // Wake every blocked receiver so it can observe disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues the next value, blocking while the channel is empty and
        /// at least one sender is alive.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self
                    .shared
                    .ready
                    .wait(state)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers += 1;
            drop(state);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.receivers -= 1;
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn values_flow_in_order_single_consumer() {
        let (tx, rx) = channel::unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_errors_once_senders_are_gone_and_queue_drained() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn send_errors_once_receivers_are_gone() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }

    #[test]
    fn cloned_receivers_split_the_work() {
        let (tx, rx) = channel::unbounded::<u32>();
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for i in 0..1_000 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<u32> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1_000).collect::<Vec<_>>());
    }
}
