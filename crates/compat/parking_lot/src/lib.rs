//! Offline drop-in replacement for the subset of `parking_lot` this workspace
//! uses: [`Mutex`] and [`RwLock`] with panic-free, non-poisoning `lock()` /
//! `read()` / `write()` signatures.
//!
//! Internally these wrap the `std::sync` primitives and recover from
//! poisoning (parking_lot has no poisoning concept, so neither does this
//! shim).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// A reader-writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock and returns the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the protected value without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};
    use std::sync::Arc;

    #[test]
    fn mutex_guards_shared_counter() {
        let counter = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        *counter.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*counter.lock(), 8_000);
    }

    #[test]
    fn rwlock_allows_concurrent_reads_and_exclusive_writes() {
        let lock = RwLock::new(41);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!((*a, *b), (41, 41));
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 42);
        assert_eq!(lock.into_inner(), 42);
    }
}
