//! Offline drop-in replacement for the subset of `proptest` this workspace
//! uses: the [`proptest!`] macro over integer-range, `any::<bool>()`, tuple,
//! `collection::vec` and `collection::btree_set` strategies, plus
//! `prop_assert!` / `prop_assert_eq!` and `ProptestConfig::with_cases`.
//!
//! Compared to the real proptest there is **no shrinking**: a failing case
//! panics with the generated inputs' `Debug` rendering, which for the small
//! domains used in this workspace's property tests is diagnosable enough.
//! Generation is deterministic (fixed seed + case index), so failures
//! reproduce across runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;

/// A source of random test values.
pub type TestRng = StdRng;

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use rand::RngExt;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }

    /// Strategy returned by [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.random()
        }
    }

    macro_rules! impl_any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }
    impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// `any::<T>()` — the canonical whole-domain strategy for a type.
pub mod arbitrary {
    use super::strategy::Any;

    /// Returns the whole-domain strategy for `T`.
    #[must_use]
    pub fn any<T>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngExt;
    use std::collections::BTreeSet;

    /// Size specification for collection strategies.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range {r:?}");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(
                r.start() <= r.end(),
                "empty collection size range {:?}..={:?}",
                r.start(),
                r.end()
            );
            SizeRange {
                lo: *r.start(),
                hi_exclusive: r.end().saturating_add(1),
            }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.lo..self.hi_exclusive)
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length is drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `BTreeSet`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates ordered sets with *up to* the sampled number of elements
    /// (duplicates drawn from the element strategy collapse, as in proptest).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Bounded attempts so tiny element domains cannot loop forever.
            for _ in 0..target.saturating_mul(4) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many random cases each property test executes.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Returns a configuration running `cases` cases per test.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }
}

#[doc(hidden)]
pub mod __runtime {
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Derives a deterministic per-case seed from the test name and index.
    #[must_use]
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        // FNV-1a over the test name, mixed with the case index.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash ^ (u64::from(case) << 1)
    }
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` body runs
/// for a configurable number of generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat_param in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let seed = $crate::__runtime::case_seed(stringify!($name), case);
                let mut rng: $crate::TestRng =
                    <$crate::__runtime::StdRng as $crate::__runtime::SeedableRng>::seed_from_u64(
                        seed,
                    );
                // Generate all inputs up front so a failing case can report
                // them (there is no shrinking, so the raw inputs are the
                // diagnostic).
                let __inputs =
                    ( $( $crate::strategy::Strategy::generate(&($strategy), &mut rng), )+ );
                let __inputs_repr = format!("{__inputs:?}");
                let ( $($pat,)+ ) = __inputs;
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(__panic) = __outcome {
                    eprintln!(
                        "[proptest] {} failed at case {}/{} (seed {:#x}); inputs: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        seed,
                        __inputs_repr,
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use crate as proptest;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..9, y in 0usize..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn collections_respect_sizes(
            v in proptest::collection::vec((any::<bool>(), 0u32..10), 0..20),
            s in proptest::collection::btree_set(0u32..100, 0..50)
        ) {
            prop_assert!(v.len() < 20);
            prop_assert!(s.len() < 50);
            for (_, n) in v {
                prop_assert!(n < 10);
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        /// The failure path must re-raise the original panic (after printing
        /// the case's inputs), so `#[should_panic]` still observes it.
        #[test]
        #[should_panic(expected = "assertion")]
        fn failing_property_still_panics(x in 0u32..10) {
            prop_assert_eq!(x, x + 1);
        }
    }

    #[test]
    #[should_panic(expected = "empty collection size range")]
    fn empty_size_range_is_rejected() {
        // Built through variables so clippy's reversed_empty_ranges lint does
        // not reject the deliberate typo this test guards against.
        let (lo, hi) = (5usize, 3usize);
        let _ = proptest::collection::vec(0u32..5, lo..hi);
    }

    #[test]
    fn case_seeds_differ_across_cases() {
        let a = crate::__runtime::case_seed("t", 0);
        let b = crate::__runtime::case_seed("t", 1);
        assert_ne!(a, b);
    }
}
