//! # abacus
//!
//! Streaming butterfly counting for **fully dynamic** bipartite graph streams
//! — a Rust reproduction of *"Counting Butterflies in Fully Dynamic Bipartite
//! Graph Streams"* (ICDE 2024).
//!
//! This meta-crate re-exports the workspace's public surface so applications
//! can depend on a single crate:
//!
//! * [`graph`] — dynamic bipartite graphs, exact butterfly counting,
//! * [`stream`] — the fully dynamic stream model, deletion injection,
//!   synthetic dataset analogs, and the pull-based `ElementSource` ingestion
//!   pipeline (text + `ABST1` binary formats) for bounded-memory streaming
//!   from disk,
//! * [`sampling`] — Random Pairing, reservoir, adaptive and Bernoulli
//!   sampling policies,
//! * [`core`] — the ABACUS and PARABACUS estimators plus the exact oracle,
//! * [`baselines`] — the insert-only FLEET and CAS baselines,
//! * [`metrics`] — evaluation metrics and result tables.
//!
//! ## Quick start
//!
//! ```
//! use abacus::prelude::*;
//!
//! // A tiny fully dynamic stream: build a 2x3 biclique, then delete one edge.
//! let mut stream: Vec<StreamElement> = Vec::new();
//! for l in 0..2u32 {
//!     for r in 0..3u32 {
//!         stream.push(StreamElement::insert(Edge::new(l, r)));
//!     }
//! }
//! stream.push(StreamElement::delete(Edge::new(0, 2)));
//!
//! // ABACUS with a budget that covers the stream is exact.
//! let mut abacus = Abacus::new(AbacusConfig::new(16).with_seed(42));
//! abacus.process_stream(&stream);
//! assert_eq!(abacus.estimate(), 1.0); // K_{2,3} has 3 butterflies; deleting (0,2) leaves 1
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use abacus_baselines as baselines;
pub use abacus_core as core;
pub use abacus_graph as graph;
pub use abacus_metrics as metrics;
pub use abacus_sampling as sampling;
pub use abacus_stream as stream;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use abacus_baselines::{Cas, CasConfig, Fleet, FleetConfig};
    pub use abacus_core::{
        Abacus, AbacusConfig, ButterflyCounter, Circuit, Ensemble, EnsembleMode, EnsembleSummary,
        EstimatorKind, EstimatorSpec, ExactCounter, LocalAbacus, ParAbacus, ParAbacusConfig,
        SnapshotMode, ViewKind, WindowedMonitor,
    };
    pub use abacus_graph::{count_butterflies, BipartiteGraph, Edge, GraphStatistics};
    pub use abacus_metrics::{relative_error, relative_error_percent, Throughput};
    pub use abacus_sampling::{derive_seed, RandomPairing, ReservoirSampler};
    pub use abacus_stream::{
        final_graph, inject_deletions_fast, open_path_source, read_all, Dataset, DeletionConfig,
        EdgeDelta, ElementSource, GraphStream, StreamElement,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_a_working_pipeline() {
        let stream = Dataset::MovielensLike.stream(0.2, 0);
        assert!(stream.len() > 10_000);
        let mut abacus = Abacus::new(AbacusConfig::new(1_000).with_seed(0));
        abacus.process_stream(&stream[..5_000]);
        assert!(abacus.estimate().is_finite());
    }
}
