#!/usr/bin/env bash
# Chaos end-to-end smoke test: run a supervised ensemble with a seeded fault
# plan that panics one replica mid-stream, require the run to complete with a
# *degraded* K-1 report, then resume the directory and require the rejoined
# ensemble to reproduce a never-failed reference estimate bit for bit.
#
# This is the out-of-process complement to tests/fault_tolerance.rs — the
# in-process suite asserts per-replica state bytes, while this script drives
# the real CLI surface: the --fault-plan grammar, the degraded health report
# lines, and the supervised `abacus resume` rejoin path.
#
# Usage: scripts/chaos_smoke.sh [fault-element-index]
#   The fault index defaults to a random element in [500, 10500); pass a
#   fixed index to reproduce a specific quarantine point.

set -euo pipefail

cd "$(dirname "$0")/.."

ABACUS=target/release/abacus
if [[ ! -x "$ABACUS" ]]; then
    echo "building release CLI..."
    cargo build --release -p abacus-cli
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/abacus-chaos-smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT
STREAM="$WORK/stream.txt"
REF_DIR="$WORK/reference-ckpt"
FAULT_DIR="$WORK/faulted-ckpt"
FAULT_AT=${1:-$((RANDOM % 10000 + 500))}

echo "== generate workload"
"$ABACUS" generate --dataset movielens --alpha 0.2 --output "$STREAM"

run_args=(run --input "$STREAM" --budget 2000 --seed 7
          --ensemble 3 --checkpoint-every 5000)

echo "== supervised reference run (no faults)"
"$ABACUS" "${run_args[@]}" --checkpoint-dir "$REF_DIR" | tee "$WORK/reference.txt"
if grep -q '^health:' "$WORK/reference.txt"; then
    echo "FAIL: the fault-free reference reported degraded health"
    exit 1
fi

echo "== supervised run with replica 1 panicking at element $FAULT_AT"
"$ABACUS" "${run_args[@]}" --checkpoint-dir "$FAULT_DIR" \
    --fault-plan "panic:replica=1@$FAULT_AT" | tee "$WORK/degraded.txt"

echo "== assert degraded serving"
grep -q '^health:.*2/3 replicas healthy (degraded)' "$WORK/degraded.txt" || {
    echo "FAIL: the faulted run did not report degraded 2/3 serving"
    exit 1
}
grep -q "^quarantine:.*replica 1 quarantined at element $FAULT_AT" "$WORK/degraded.txt" || {
    echo "FAIL: the quarantine record does not name replica 1 at element $FAULT_AT"
    exit 1
}

echo "== resume: rejoin the quarantined replica via snapshot + WAL catch-up"
"$ABACUS" resume --checkpoint-dir "$FAULT_DIR" --input "$STREAM" | tee "$WORK/rejoined.txt"
if grep -q '^health:' "$WORK/rejoined.txt"; then
    echo "FAIL: the rejoined ensemble still reports degraded health"
    exit 1
fi
grep -q '^replica 1 resume:' "$WORK/rejoined.txt" || {
    echo "FAIL: the resume report does not show replica 1 being rebuilt"
    exit 1
}

echo "== compare"
ref_estimate=$(grep '^estimate:' "$WORK/reference.txt")
rej_estimate=$(grep '^estimate:' "$WORK/rejoined.txt")
echo "reference: $ref_estimate"
echo "rejoined:  $rej_estimate"
if [[ "$ref_estimate" != "$rej_estimate" ]]; then
    echo "FAIL: rejoined estimate diverged from the never-failed reference"
    diff "$WORK/reference.txt" "$WORK/rejoined.txt" || true
    exit 1
fi

ref_committed=$(grep '^committed:' "$WORK/reference.txt")
rej_committed=$(grep '^committed:' "$WORK/rejoined.txt")
if [[ "$ref_committed" != "$rej_committed" ]]; then
    echo "FAIL: committed watermark diverged ($rej_committed vs $ref_committed)"
    exit 1
fi

echo "PASS: replica 1 panicked at element $FAULT_AT, served degraded, rejoined bit-identically"
