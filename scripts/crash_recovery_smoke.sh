#!/usr/bin/env bash
# Crash-recovery end-to-end smoke test: start a checkpointed run, SIGKILL it
# at a random moment, resume it, and require the resumed estimate to match an
# uninterrupted reference bit for bit.
#
# This is the out-of-process complement to tests/recovery_parity.rs — the
# in-process suite simulates the kill by dropping the checkpointer, while
# this script delivers an actual `kill -9` to a live `abacus run`, so the
# WAL's write-through and torn-tail handling are exercised against a real
# dirty process exit.
#
# Usage: scripts/crash_recovery_smoke.sh [kill-delay-seconds]
#   The delay defaults to a random value in [0.2, 1.7); pass a fixed delay
#   to reproduce a specific interleaving.

set -euo pipefail

cd "$(dirname "$0")/.."

ABACUS=target/release/abacus
if [[ ! -x "$ABACUS" ]]; then
    echo "building release CLI..."
    cargo build --release -p abacus-cli
fi

WORK=$(mktemp -d "${TMPDIR:-/tmp}/abacus-crash-smoke.XXXXXX")
trap 'rm -rf "$WORK"' EXIT
STREAM="$WORK/stream.txt"
REF_DIR="$WORK/reference-ckpt"
CRASH_DIR="$WORK/crashed-ckpt"
EVERY=5000

echo "== generate workload"
# Scale 10 (~720k elements): the checkpointed run takes a couple of seconds,
# so the random kill below lands mid-run rather than after completion.
"$ABACUS" generate --dataset movielens --alpha 0.2 --scale 10 --output "$STREAM"

run_args=(run --input "$STREAM" --budget 3000 --seed 7 --checkpoint-every "$EVERY")

echo "== uninterrupted reference run"
"$ABACUS" "${run_args[@]}" --checkpoint-dir "$REF_DIR" | tee "$WORK/reference.txt"

echo "== checkpointed run, killed with SIGKILL"
"$ABACUS" "${run_args[@]}" --checkpoint-dir "$CRASH_DIR" >"$WORK/crashed.txt" 2>&1 &
victim=$!
# Let the run get underway before shooting it; a fixed argument makes a
# specific kill point reproducible, the default is a random moment.
delay=${1:-"$((RANDOM % 15 + 2))e-1"}
sleep "$delay"
if kill -9 "$victim" 2>/dev/null; then
    echo "killed run after ${delay}s"
else
    echo "run finished before the kill landed after ${delay}s (still a valid case)"
fi
wait "$victim" 2>/dev/null || true

if [[ ! -f "$CRASH_DIR/MANIFEST" ]]; then
    echo "run died before writing its manifest; nothing to resume (rerun with a larger delay)"
    exit 1
fi

echo "== resume"
"$ABACUS" resume --checkpoint-dir "$CRASH_DIR" --input "$STREAM" | tee "$WORK/resumed.txt"

echo "== compare"
ref_estimate=$(grep '^estimate:' "$WORK/reference.txt")
res_estimate=$(grep '^estimate:' "$WORK/resumed.txt")
echo "reference: $ref_estimate"
echo "resumed:   $res_estimate"
if [[ "$ref_estimate" != "$res_estimate" ]]; then
    echo "FAIL: resumed estimate diverged from the uninterrupted reference"
    diff "$WORK/reference.txt" "$WORK/resumed.txt" || true
    exit 1
fi

ref_committed=$(grep '^committed:' "$WORK/reference.txt")
res_committed=$(grep '^committed:' "$WORK/resumed.txt")
if [[ "$ref_committed" != "$res_committed" ]]; then
    echo "FAIL: committed watermark diverged ($res_committed vs $ref_committed)"
    exit 1
fi

echo "PASS: kill -9 at ${delay}s, resumed bit-identically"
